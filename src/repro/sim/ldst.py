"""The per-SM LD/ST unit: L1 probe, MSHRs, and replication hardware.

This is where the paper's schemes live in the timing model (Section
IV-B/IV-C).  On an L1 miss to a protected object the unit issues one
transaction per replica copy:

* **detection (lazy)** — the warp's dependency is satisfied when the
  *first* (primary) copy returns; the copies are compared in the
  background, bounded by the 32-entry pending-compare queue (a full
  queue is a structural stall);
* **correction** — the warp waits for all three copies plus the
  majority-vote pass through the 256-bit comparator.

Merged misses (MSHR hits) inherit the pending line's readiness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.arch.cache import Cache, CacheConfig
from repro.arch.config import GpuConfig
from repro.arch.mshr import MshrFile
from repro.core.hardware import HardwareBudget
from repro.sim.memory_subsystem import MemorySubsystem
from repro.sim.metrics import StallBreakdown


@dataclass(frozen=True)
class TimingProtection:
    """Which objects are replicated and how, for the timing model.

    This is the sim-internal protection descriptor (distinct from the
    public :class:`repro.core.protection.ProtectionSpec`, which it is
    built from).  ``schemes`` maps protected objects to their scheme
    when the configuration mixes detection and correction per object;
    an empty map means every protected object uses ``scheme_name``
    uniformly.
    """

    scheme_name: str  # "baseline" | "detection" | "correction" | "mixed"
    lazy: bool
    #: object name -> byte offsets from the primary base to each replica
    offsets: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: object name -> "detection" | "correction" (mixed configs only)
    schemes: dict[str, str] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        """Whether any object is protected at all."""
        return self.scheme_name != "baseline" and bool(self.offsets)

    def scheme_of(self, obj_name: str) -> str:
        """The scheme protecting ``obj_name`` (uniform fallback)."""
        return self.schemes.get(obj_name, self.scheme_name)

    @property
    def n_way(self) -> int:
        """Width of the copy comparison (2 for detection, 3 for
        correction) — of the first protected object for mixed specs."""
        if not self.offsets:
            return 1
        any_offsets = next(iter(self.offsets.values()))
        return 1 + len(any_offsets)

    @classmethod
    def baseline(cls) -> "TimingProtection":
        """The no-protection descriptor."""
        return cls("baseline", lazy=True)


@dataclass
class SimStats:
    """Mutable counters shared by every LD/ST unit of one simulation."""

    instructions: int = 0
    demand_misses: int = 0
    replica_transactions: int = 0
    store_transactions: int = 0
    stalls: StallBreakdown = field(default_factory=StallBreakdown)


class LdstUnit:
    """One SM's load/store pipeline front-end."""

    def __init__(
        self,
        config: GpuConfig,
        subsystem: MemorySubsystem,
        protection: TimingProtection,
        budget: HardwareBudget,
        stats: SimStats,
        name: str = "ldst",
    ):
        self.config = config
        self.subsystem = subsystem
        self.protection = protection
        self.budget = budget
        self.stats = stats
        self.l1 = Cache(
            CacheConfig(config.l1_size_bytes, config.l1_assoc,
                        config.line_bytes),
            name=f"L1/{name}",
        )
        self.mshr = MshrFile(
            config.l1_mshr_entries, config.l1_mshr_max_merged
        )
        #: line addr -> (fill_time, demand_ready_time)
        self._pending: dict[int, tuple[int, int]] = {}
        self._fill_heap: list[tuple[int, int]] = []
        self._compare_heap: list[int] = []
        #: object name -> comparator cycles for that object's n-way read
        self._compare_cycles: dict[str, int] = {}
        #: objects whose comparison happens off the critical path
        self._lazy_detection: frozenset[str] = frozenset()
        if protection.active:
            for obj_name, offsets in protection.offsets.items():
                self._compare_cycles[obj_name] = budget.compare_cycles(
                    config.line_bytes, n_way=1 + len(offsets)
                )
            if protection.lazy:
                self._lazy_detection = frozenset(
                    obj_name for obj_name in protection.offsets
                    if protection.scheme_of(obj_name) == "detection"
                )

    # ------------------------------------------------------------------
    def _drain(self, now: int) -> None:
        """Retire MSHR entries whose fills have arrived and compare-queue
        entries whose lazy comparison has finished."""
        while self._fill_heap and self._fill_heap[0][0] <= now:
            _fill, line = heapq.heappop(self._fill_heap)
            self.mshr.release(line)
            self._pending.pop(line, None)
        while self._compare_heap and self._compare_heap[0] <= now:
            heapq.heappop(self._compare_heap)

    def load(self, now: int, obj_name: str, addr: int) \
            -> tuple[int, int | None]:
        """Issue one read transaction.

        Returns ``(ready_time, None)`` when issued, or
        ``(0, stall_until)`` on a structural stall (MSHR or compare
        queue full) — the caller retries at ``stall_until``.

        The L1 probe happens *after* every structural-stall check: a
        stalled load is retried by the scheduler, and probing first
        would re-count the access and touch LRU state on each retry,
        skewing the very hit-rate counters the overhead results use.
        Stall returns are side-effect-free, so ``l1_accesses`` and
        ``l1_hits`` are invariant under retries.

        NOTE: the traced variant in ``_attach_tracer`` duplicates this
        body (fused instrumentation) — keep the two in lockstep.
        """
        self._drain(now)
        pending = self._pending.get(addr)
        if pending is not None:
            # Merged miss: data is already on its way.
            outcome = self.mshr.probe(addr)
            if outcome == "stall":
                self.stats.stalls.mshr_full += 1
                self.mshr.record_stall(addr)
                return 0, pending[0]
            self.l1.access(addr)
            self.mshr.add(addr)
            # The line's demand-ready time can predate a late-arriving
            # warp's own L1 read-port turnaround; data is never
            # delivered faster than an L1 hit at ``now`` would be.
            return max(pending[1], now + self.config.l1_hit_latency), None
        if self.l1.lookup(addr):
            self.l1.access(addr)
            return now + self.config.l1_hit_latency, None

        # True miss: need an MSHR slot and, for lazy detection, room in
        # the pending-compare queue before any transaction goes out.
        if self.mshr.probe(addr) == "stall":
            self.stats.stalls.mshr_full += 1
            self.mshr.record_stall(addr)
            stall_until = (
                self._fill_heap[0][0] if self._fill_heap else now + 1
            )
            return 0, stall_until
        protected = (
            self.protection.active
            and obj_name in self.protection.offsets
        )
        if protected and obj_name in self._lazy_detection:
            if len(self._compare_heap) >= \
                    self.config.pending_compare_entries:
                self.stats.stalls.compare_queue_full += 1
                return 0, self._compare_heap[0]

        self.l1.access(addr)
        fill = self.subsystem.read(now, addr)
        self.stats.demand_misses += 1
        demand_ready = fill
        if protected:
            replica_times = []
            for offset in self.protection.offsets[obj_name]:
                replica_times.append(
                    self.subsystem.read(now, addr + offset)
                )
                self.stats.replica_transactions += 1
            all_copies = max(fill, *replica_times)
            if obj_name in self._lazy_detection:
                demand_ready = fill
                heapq.heappush(
                    self._compare_heap,
                    all_copies + self._compare_cycles[obj_name],
                )
            else:
                # Correction, or the eager-detection ablation: stall
                # the dependency until every copy arrived and the
                # comparator/vote pass finished.
                demand_ready = (
                    all_copies + self._compare_cycles[obj_name]
                )

        self.mshr.add(addr)
        heapq.heappush(self._fill_heap, (fill, addr))
        self._pending[addr] = (fill, demand_ready)
        return demand_ready, None

    def store(self, now: int, addr: int) -> None:
        """Write-through, no-allocate, fire-and-forget.

        NOTE: the traced variant in ``_attach_tracer`` duplicates this
        body (fused instrumentation) — keep the two in lockstep.
        """
        self.subsystem.write(now, addr)
        self.stats.store_transactions += 1

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer, pid: int) -> None:
        """Instrument this unit for a trace session.

        The LD/ST unit is the request-context layer: ``load`` stamps the
        session's ``now``/``ctx_obj`` before descending the synchronous
        hierarchy, so every component below (L1, MSHR, crossbar, L2,
        DRAM) attributes its events to the exact owning object — replica
        traffic included, which the address-map fallback alone cannot
        resolve.  Outcomes are classified from stats deltas: the L1 tag
        array is touched exactly once per issued primary access, so a
        miss delta means a true miss and an MSHR merge delta a merged
        one.  On structural stalls it records the reason for the SM-level
        hook to label the warp's stall span.
        """
        from repro.obs.trace import TID_LDST

        self.l1._attach_tracer(tracer, pid, TID_LDST)
        self.mshr._attach_tracer(tracer, pid, TID_LDST)
        # Fused instrumentation: the traced variant duplicates
        # ``load``'s body (keep the two in lockstep!) instead of
        # wrapping it — each branch already knows whether it hit,
        # merged, missed or stalled, so the wrapper's stats-delta
        # re-derivation and its extra call frame both disappear.
        # Everything below is resolved once per attach: none of these
        # objects are rebound during a simulation (components are
        # built fresh per simulate call).  Note the bound methods are
        # captured *after* the L1/MSHR hooks attached, so the fused
        # body descends through the traced cache and MSHR exactly as
        # the plain ``load`` would.
        drain = self._drain
        pending_map = self._pending
        fill_heap = self._fill_heap
        compare_heap = self._compare_heap
        # The L1 probe/fill is inlined below (the fused equivalent of
        # ``lookup`` + ``access`` with the line index computed once —
        # keep it in lockstep with ``Cache.access``); the evict site
        # re-interns the key the L1's own hook registered above, so
        # both emit the same site id.
        l1_stats = self.l1.stats
        l1_sets = self.l1._sets
        l1_line_bytes = self.l1.config.line_bytes
        l1_n_sets = self.l1.config.n_sets
        l1_assoc = self.l1.config.assoc
        l1_evict_site = tracer.site(
            "cache", f"{self.l1.name} evict", pid, TID_LDST, ph="i"
        )
        mshr_probe = self.mshr.probe
        mshr_add = self.mshr.add            # traced
        mshr_record_stall = self.mshr.record_stall  # traced
        subsystem_read = self.subsystem.read        # traced
        subsystem_write = self.subsystem.write      # traced
        heappush = heapq.heappush
        stats = self.stats
        stalls = self.stats.stalls
        protection = self.protection
        prot_active = protection.active
        prot_offsets = protection.offsets
        lazy_detection = self._lazy_detection
        compare_cycles = self._compare_cycles
        l1_hit_latency = self.config.l1_hit_latency
        compare_entries = self.config.pending_compare_entries
        obj_stats = tracer.obj
        sampled = tracer.sampled
        attribute = tracer.attribute
        always = tracer.config.sample_rate >= 1.0
        buf_append = tracer._buf.append
        miss_site = tracer.site("cache", "l1-miss-fill", pid, TID_LDST)
        merge_site = tracer.site("mshr", "miss-merge", pid, TID_LDST,
                                 ph="i")

        memo_name: str | None = None
        memo_stats = None

        def traced_load(now: int, obj_name: str, addr: int) \
                -> tuple[int, int | None]:
            # ``ctx_obj`` is consumed only below ``subsystem.read`` (the
            # L2/NoC/DRAM hooks), so it is stamped just around those
            # calls in the true-miss branch and stays ``None`` on every
            # other path; ``last_stall_reason`` is read only on stall
            # returns, so the success paths never touch it.
            nonlocal memo_name, memo_stats
            tracer.now = now
            drain(now)
            pending = pending_map.get(addr)
            if pending is not None:
                # Merged miss: data is already on its way.
                if mshr_probe(addr) == "stall":
                    stalls.mshr_full += 1
                    mshr_record_stall(addr)
                    stall_until = pending[0]
                    obj_stats(obj_name).stall_cycles += stall_until - now
                    tracer.last_stall_reason = "mshr_full"
                    return 0, stall_until
                line = addr // l1_line_bytes
                l1_set = l1_sets[line % l1_n_sets]
                tag = line // l1_n_sets
                l1_stats.accesses += 1
                if hit := tag in l1_set:
                    l1_set.move_to_end(tag)
                    l1_stats.hits += 1
                else:
                    l1_stats.misses += 1
                    if len(l1_set) >= l1_assoc:
                        l1_set.popitem(last=False)  # evict LRU
                        l1_stats.evictions += 1
                        if sampled() and l1_evict_site >= 0:
                            buf_append((l1_evict_site, now, 0,
                                        obj_name, None))
                    l1_set[tag] = None
                mshr_add(addr)
                ready = pending[1]
                turnaround = now + l1_hit_latency
                if turnaround > ready:
                    ready = turnaround
                ostats = obj_stats(obj_name)
                ostats.loads += 1
                if not hit:
                    # The line was evicted while filling: the access
                    # re-allocated it, which reads as a miss-fill.
                    ostats.l1_misses += 1
                    if (always or sampled()) and miss_site >= 0:
                        buf_append((miss_site, now, ready - now,
                                    obj_name, None))
                else:
                    ostats.mshr_merges += 1
                    if (always or sampled()) and merge_site >= 0:
                        buf_append((merge_site, now, 0, obj_name, None))
                return ready, None
            line = addr // l1_line_bytes
            l1_set = l1_sets[line % l1_n_sets]
            tag = line // l1_n_sets
            if tag in l1_set:
                l1_stats.accesses += 1
                l1_set.move_to_end(tag)
                l1_stats.hits += 1
                if obj_name is memo_name:
                    memo_stats.loads += 1
                else:
                    memo_name = obj_name
                    memo_stats = obj_stats(obj_name)
                    memo_stats.loads += 1
                return now + l1_hit_latency, None

            if mshr_probe(addr) == "stall":
                stalls.mshr_full += 1
                mshr_record_stall(addr)
                stall_until = (
                    fill_heap[0][0] if fill_heap else now + 1
                )
                obj_stats(obj_name).stall_cycles += stall_until - now
                tracer.last_stall_reason = "mshr_full"
                return 0, stall_until
            protected = prot_active and obj_name in prot_offsets
            if protected and obj_name in lazy_detection:
                if len(compare_heap) >= compare_entries:
                    stalls.compare_queue_full += 1
                    stall_until = compare_heap[0]
                    obj_stats(obj_name).stall_cycles += stall_until - now
                    tracer.last_stall_reason = "compare_queue_full"
                    return 0, stall_until

            # True-miss fill: the probe above just failed and nothing
            # since touched the set, so this is ``Cache.access``'s
            # miss-allocate branch with the index reused.
            l1_stats.accesses += 1
            l1_stats.misses += 1
            if len(l1_set) >= l1_assoc:
                l1_set.popitem(last=False)  # evict LRU
                l1_stats.evictions += 1
                if sampled() and l1_evict_site >= 0:
                    buf_append((l1_evict_site, now, 0, obj_name, None))
            l1_set[tag] = None
            tracer.ctx_obj = obj_name
            fill = subsystem_read(now, addr)
            stats.demand_misses += 1
            demand_ready = fill
            if protected:
                replica_times = []
                for offset in prot_offsets[obj_name]:
                    replica_times.append(
                        subsystem_read(now, addr + offset)
                    )
                    stats.replica_transactions += 1
                all_copies = max(fill, *replica_times)
                if obj_name in lazy_detection:
                    demand_ready = fill
                    heappush(compare_heap,
                             all_copies + compare_cycles[obj_name])
                else:
                    demand_ready = (
                        all_copies + compare_cycles[obj_name]
                    )
            tracer.ctx_obj = None
            mshr_add(addr)
            heappush(fill_heap, (fill, addr))
            pending_map[addr] = (fill, demand_ready)
            ostats = obj_stats(obj_name)
            ostats.loads += 1
            ostats.l1_misses += 1
            if (always or sampled()) and miss_site >= 0:
                buf_append((miss_site, now, demand_ready - now,
                            obj_name, None))
            return demand_ready, None

        def traced_store(now: int, addr: int) -> None:
            # Fused ``store`` (keep in lockstep with the plain body):
            # write-through, no-allocate, fire-and-forget.
            tracer.now = now
            tracer.ctx_obj = attribute(addr)
            subsystem_write(now, addr)
            tracer.ctx_obj = None
            stats.store_transactions += 1

        self.load = traced_load
        self.store = traced_store
