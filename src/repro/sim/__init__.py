"""Trace-driven GPU timing simulator.

The simulator replays :class:`~repro.kernels.trace.AppTrace` warp
instruction streams on a model of the Table I GPU:

* SMs issue up to ``issue_width`` warp-instructions per cycle from
  their resident warps (greedy round-robin), hiding memory latency by
  switching warps — the latency-tolerance property the paper's
  detection scheme leans on;
* loads probe a per-SM L1 with an MSHR file (merge + structural
  stalls), misses travel over per-partition interconnect links to L2
  slices and on to DRAM channels with row-buffer state;
* the LD/ST unit implements the paper's replication: on an L1 miss to
  a protected object it emits one transaction per replica copy;
  detection resumes the warp on the *first* returning copy (lazy
  compare, bounded by the pending-compare queue) while correction
  waits for all three.

Outputs are cycle counts and the "L1-cache missed accesses" metric of
Figure 7.
"""

from repro.sim.metrics import SimReport
from repro.sim.simulator import simulate_app, simulate_trace

__all__ = ["SimReport", "simulate_app", "simulate_trace"]
