"""The shared below-L1 memory hierarchy: interconnect + L2 + DRAM.

Requests are serviced analytically: every shared resource keeps a
next-free time, so a request arriving at cycle ``t`` experiences
queueing whenever earlier traffic has pushed the resource's next-free
time past ``t``.  SMs are interleaved in (approximately) global time
order by the simulator, which keeps this composition causal.
"""

from __future__ import annotations

from repro.arch.cache import Cache, CacheConfig
from repro.arch.config import GpuConfig
from repro.arch.dram import DramChannel, DramTimings
from repro.arch.interconnect import Crossbar


class MemorySubsystem:
    """Per-partition L2 slices and DRAM channels behind a crossbar."""

    def __init__(self, config: GpuConfig):
        self.config = config
        self.crossbar = Crossbar(
            n_partitions=config.n_mem_channels,
            bytes_per_cycle=config.interconnect_bytes_per_cycle,
            base_latency=config.interconnect_latency,
            line_bytes=config.line_bytes,
        )
        self.l2_slices = [
            Cache(
                CacheConfig(
                    config.l2_slice_size_bytes,
                    config.l2_assoc,
                    config.line_bytes,
                ),
                name=f"L2[{i}]",
            )
            for i in range(config.n_mem_channels)
        ]
        timings = DramTimings(
            row_hit_cycles=config.dram_row_hit_cycles,
            row_miss_cycles=config.dram_row_miss_cycles,
            bus_cycles_per_line=config.dram_bus_cycles_per_line,
        )
        self.dram_channels = [
            DramChannel(
                n_banks=config.dram_banks_per_channel,
                row_bytes=config.dram_row_bytes,
                line_bytes=config.line_bytes,
                timings=timings,
                name=f"DRAM[{i}]",
            )
            for i in range(config.n_mem_channels)
        ]
        self._l2_next_free = [0] * config.n_mem_channels

    def read(self, now: int, addr: int) -> int:
        """Service a read-line request; return data-delivery time at the
        requesting SM.

        NOTE: the traced variant in ``_attach_tracer`` duplicates this
        body (fused instrumentation) — keep the two in lockstep.
        """
        part = self.config.channel_of_address(addr)
        arrive = self.crossbar.send_request(now, part)
        start = max(arrive, self._l2_next_free[part])
        self._l2_next_free[part] = start + self.config.l2_service_cycles
        if self.l2_slices[part].access(addr):
            data_at = start + self.config.l2_hit_latency
        else:
            dram_at = start + self.config.l2_hit_latency
            data_at = self.dram_channels[part].access(dram_at, addr)
        return self.crossbar.send_response(data_at, part)

    def write(self, now: int, addr: int) -> None:
        """Fire-and-forget write-through store: occupies the request
        link and an L2 slot; no response is modelled (write-ack-free),
        and no L2 allocation happens on a write miss.

        NOTE: the traced variant in ``_attach_tracer`` duplicates this
        body (fused instrumentation) — keep the two in lockstep.
        """
        part = self.config.channel_of_address(addr)
        arrive = self.crossbar.send_request(now, part)
        start = max(arrive, self._l2_next_free[part])
        self._l2_next_free[part] = start + self.config.l2_service_cycles
        self.l2_slices[part].access(addr, allocate=False)

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer) -> None:
        """Instrument the shared hierarchy for a trace session.

        ``read``/``write`` are rebound to fused variants that emit
        per-request L2-slice service spans (hit/miss straight from the
        inlined L2 access) and accumulate per-object L2 attribution;
        the crossbar links and DRAM channels attach their own hooks
        underneath.  Nothing is rebound when no tracer is attached —
        the plain methods run byte-identical to the un-instrumented
        build.
        """
        from repro.obs.trace import (
            PID_DRAM_BASE,
            PID_L2_BASE,
            PID_NOC_BASE,
            TID_DRAM_BUS,
            TID_MAIN,
        )

        for i, channel in enumerate(self.dram_channels):
            pid = PID_DRAM_BASE + i
            tracer.register_track(
                pid, f"DRAM channel {i}", TID_DRAM_BUS, "data bus")
            for bank in range(channel.n_banks):
                tracer.register_track(pid, f"DRAM channel {i}",
                                      bank, f"bank {bank}")
            channel._attach_tracer(tracer, pid, TID_DRAM_BUS)
        for i, (req, rsp) in enumerate(
            zip(self.crossbar.request_links, self.crossbar.response_links)
        ):
            pid = PID_NOC_BASE + i
            tracer.register_track(pid, f"NoC partition {i}", 0, "request")
            tracer.register_track(pid, f"NoC partition {i}", 1, "response")
            req._attach_tracer(tracer, pid, 0)
            rsp._attach_tracer(tracer, pid, 1)
        for i in range(self.config.n_mem_channels):
            tracer.register_track(
                PID_L2_BASE + i, f"L2 slice {i}", TID_MAIN, "service")

        # Fused instrumentation: the traced variants duplicate
        # ``read``/``write`` (keep them in lockstep!) so the wrapper
        # frame, the duplicate address->partition mapping and the
        # L2-stats-delta hit probe all disappear — the inlined L2
        # access returns hit/miss directly.  The link/DRAM bound
        # methods are captured *after* their own hooks attached above,
        # so the fused bodies descend through the traced components
        # exactly as the plain methods would.
        channel_of = self.config.channel_of_address
        l2_next_free = self._l2_next_free
        service_cycles = self.config.l2_service_cycles
        l2_hit_latency = self.config.l2_hit_latency
        request_bytes = self.crossbar.REQUEST_BYTES
        line_bytes = self.crossbar.line_bytes
        req_transfers = [
            link.transfer for link in self.crossbar.request_links
        ]  # traced — attached above
        rsp_transfers = [
            link.transfer for link in self.crossbar.response_links
        ]  # traced — attached above
        l2_accesses = [s.access for s in self.l2_slices]  # plain
        dram_accesses = [
            c.access for c in self.dram_channels
        ]  # traced — attached above
        obj_stats = tracer.obj
        sampled = tracer.sampled
        attribute = tracer.attribute
        always = tracer.config.sample_rate >= 1.0
        buf_append = tracer._buf.append
        n_parts = self.config.n_mem_channels
        hit_sites = [
            tracer.site("l2", "l2-hit", PID_L2_BASE + i, TID_MAIN)
            for i in range(n_parts)
        ]
        miss_sites = [
            tracer.site("l2", "l2-miss", PID_L2_BASE + i, TID_MAIN)
            for i in range(n_parts)
        ]
        write_sites = [
            tracer.site("l2", "l2-write", PID_L2_BASE + i, TID_MAIN,
                        ph="i")
            for i in range(n_parts)
        ]

        def traced_read(now: int, addr: int) -> int:
            part = channel_of(addr)
            arrive = req_transfers[part](now, request_bytes)
            l2_free = l2_next_free[part]
            start = arrive if arrive > l2_free else l2_free
            l2_next_free[part] = start + service_cycles
            hit = l2_accesses[part](addr)
            if hit:
                data_at = start + l2_hit_latency
            else:
                data_at = dram_accesses[part](start + l2_hit_latency,
                                              addr)
            done = rsp_transfers[part](data_at, line_bytes)
            obj = tracer.ctx_obj
            if obj is None:
                obj = attribute(addr)
            stats = obj_stats(obj)
            stats.l2_accesses += 1
            if not hit:
                stats.l2_misses += 1
            if always or sampled():
                # Lower bound of the slice's service start (the exact
                # value also folds in request-link queueing, which the
                # NoC track shows separately).
                sid = hit_sites[part] if hit else miss_sites[part]
                if sid >= 0:
                    buf_append((sid, l2_free if l2_free > now else now,
                                service_cycles, obj, None))
            return done

        def traced_write(now: int, addr: int) -> None:
            part = channel_of(addr)
            arrive = req_transfers[part](now, request_bytes)
            l2_free = l2_next_free[part]
            start = arrive if arrive > l2_free else l2_free
            l2_next_free[part] = start + service_cycles
            l2_accesses[part](addr, allocate=False)
            obj = tracer.ctx_obj
            if obj is None:
                obj = attribute(addr)
            obj_stats(obj).l2_accesses += 1
            if always or sampled():
                sid = write_sites[part]
                if sid >= 0:
                    buf_append((sid, tracer.now, 0, obj, None))

        self.read = traced_read
        self.write = traced_write

    # ------------------------------------------------------------------
    # Aggregated stats
    # ------------------------------------------------------------------
    @property
    def l2_accesses(self) -> int:
        return sum(s.stats.accesses for s in self.l2_slices)

    @property
    def l2_hits(self) -> int:
        return sum(s.stats.hits for s in self.l2_slices)

    @property
    def dram_requests(self) -> int:
        return sum(c.stats.requests for c in self.dram_channels)

    @property
    def dram_row_hits(self) -> int:
        return sum(c.stats.row_hits for c in self.dram_channels)

    @property
    def dram_bank_queue_cycles(self) -> int:
        """Total cycles requests waited for a busy bank, all channels."""
        return sum(c.stats.bank_queue_cycles for c in self.dram_channels)

    @property
    def dram_bus_queue_cycles(self) -> int:
        """Total cycles lines waited for the channel data bus."""
        return sum(c.stats.bus_queue_cycles for c in self.dram_channels)
