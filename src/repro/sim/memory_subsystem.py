"""The shared below-L1 memory hierarchy: interconnect + L2 + DRAM.

Requests are serviced analytically: every shared resource keeps a
next-free time, so a request arriving at cycle ``t`` experiences
queueing whenever earlier traffic has pushed the resource's next-free
time past ``t``.  SMs are interleaved in (approximately) global time
order by the simulator, which keeps this composition causal.
"""

from __future__ import annotations

from repro.arch.cache import Cache, CacheConfig
from repro.arch.config import GpuConfig
from repro.arch.dram import DramChannel, DramTimings
from repro.arch.interconnect import Crossbar


class MemorySubsystem:
    """Per-partition L2 slices and DRAM channels behind a crossbar."""

    def __init__(self, config: GpuConfig):
        self.config = config
        self.crossbar = Crossbar(
            n_partitions=config.n_mem_channels,
            bytes_per_cycle=config.interconnect_bytes_per_cycle,
            base_latency=config.interconnect_latency,
            line_bytes=config.line_bytes,
        )
        self.l2_slices = [
            Cache(
                CacheConfig(
                    config.l2_slice_size_bytes,
                    config.l2_assoc,
                    config.line_bytes,
                ),
                name=f"L2[{i}]",
            )
            for i in range(config.n_mem_channels)
        ]
        timings = DramTimings(
            row_hit_cycles=config.dram_row_hit_cycles,
            row_miss_cycles=config.dram_row_miss_cycles,
            bus_cycles_per_line=config.dram_bus_cycles_per_line,
        )
        self.dram_channels = [
            DramChannel(
                n_banks=config.dram_banks_per_channel,
                row_bytes=config.dram_row_bytes,
                line_bytes=config.line_bytes,
                timings=timings,
                name=f"DRAM[{i}]",
            )
            for i in range(config.n_mem_channels)
        ]
        self._l2_next_free = [0] * config.n_mem_channels

    def read(self, now: int, addr: int) -> int:
        """Service a read-line request; return data-delivery time at the
        requesting SM."""
        part = self.config.channel_of_address(addr)
        arrive = self.crossbar.send_request(now, part)
        start = max(arrive, self._l2_next_free[part])
        self._l2_next_free[part] = start + self.config.l2_service_cycles
        if self.l2_slices[part].access(addr):
            data_at = start + self.config.l2_hit_latency
        else:
            dram_at = start + self.config.l2_hit_latency
            data_at = self.dram_channels[part].access(dram_at, addr)
        return self.crossbar.send_response(data_at, part)

    def write(self, now: int, addr: int) -> None:
        """Fire-and-forget write-through store: occupies the request
        link and an L2 slot; no response is modelled (write-ack-free),
        and no L2 allocation happens on a write miss."""
        part = self.config.channel_of_address(addr)
        arrive = self.crossbar.send_request(now, part)
        start = max(arrive, self._l2_next_free[part])
        self._l2_next_free[part] = start + self.config.l2_service_cycles
        self.l2_slices[part].access(addr, allocate=False)

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer) -> None:
        """Instrument the shared hierarchy for a trace session.

        ``read``/``write`` are rebound to wrappers that emit per-request
        L2-slice service spans (hit/miss from the slice's stats delta)
        and accumulate per-object L2 attribution; the crossbar links and
        DRAM channels attach their own wrappers underneath.  Nothing is
        rebound when no tracer is attached — the plain methods run
        byte-identical to the un-instrumented build.
        """
        from repro.obs.trace import (
            PID_DRAM_BASE,
            PID_L2_BASE,
            PID_NOC_BASE,
            TID_DRAM_BUS,
            TID_MAIN,
        )

        for i, channel in enumerate(self.dram_channels):
            pid = PID_DRAM_BASE + i
            tracer.register_track(
                pid, f"DRAM channel {i}", TID_DRAM_BUS, "data bus")
            for bank in range(channel.n_banks):
                tracer.register_track(pid, f"DRAM channel {i}",
                                      bank, f"bank {bank}")
            channel._attach_tracer(tracer, pid, TID_DRAM_BUS)
        for i, (req, rsp) in enumerate(
            zip(self.crossbar.request_links, self.crossbar.response_links)
        ):
            pid = PID_NOC_BASE + i
            tracer.register_track(pid, f"NoC partition {i}", 0, "request")
            tracer.register_track(pid, f"NoC partition {i}", 1, "response")
            req._attach_tracer(tracer, pid, 0)
            rsp._attach_tracer(tracer, pid, 1)
        for i in range(self.config.n_mem_channels):
            tracer.register_track(
                PID_L2_BASE + i, f"L2 slice {i}", TID_MAIN, "service")

        orig_read = self.read
        orig_write = self.write

        def traced_read(now: int, addr: int) -> int:
            part = self.config.channel_of_address(addr)
            slice_stats = self.l2_slices[part].stats
            hits_before = slice_stats.hits
            l2_free = self._l2_next_free[part]
            done = orig_read(now, addr)
            hit = slice_stats.hits != hits_before
            obj = tracer.attribute(addr)
            stats = tracer.obj(obj)
            stats.l2_accesses += 1
            if not hit:
                stats.l2_misses += 1
            if tracer.sampled():
                # Lower bound of the slice's service start (the exact
                # value also folds in request-link queueing, which the
                # NoC track shows separately).
                start = max(l2_free, now)
                tracer.emit(
                    "l2", "l2-hit" if hit else "l2-miss",
                    start, self.config.l2_service_cycles,
                    PID_L2_BASE + part, TID_MAIN, obj=obj,
                )
            return done

        def traced_write(now: int, addr: int) -> None:
            orig_write(now, addr)
            part = self.config.channel_of_address(addr)
            obj = tracer.attribute(addr)
            tracer.obj(obj).l2_accesses += 1
            if tracer.sampled():
                tracer.instant(
                    "l2", "l2-write", tracer.now,
                    PID_L2_BASE + part, TID_MAIN, obj=obj,
                )

        self.read = traced_read
        self.write = traced_write

    # ------------------------------------------------------------------
    # Aggregated stats
    # ------------------------------------------------------------------
    @property
    def l2_accesses(self) -> int:
        return sum(s.stats.accesses for s in self.l2_slices)

    @property
    def l2_hits(self) -> int:
        return sum(s.stats.hits for s in self.l2_slices)

    @property
    def dram_requests(self) -> int:
        return sum(c.stats.requests for c in self.dram_channels)

    @property
    def dram_row_hits(self) -> int:
        return sum(c.stats.row_hits for c in self.dram_channels)

    @property
    def dram_bank_queue_cycles(self) -> int:
        """Total cycles requests waited for a busy bank, all channels."""
        return sum(c.stats.bank_queue_cycles for c in self.dram_channels)

    @property
    def dram_bus_queue_cycles(self) -> int:
        """Total cycles lines waited for the channel data bus."""
        return sum(c.stats.bus_queue_cycles for c in self.dram_channels)
