"""Per-warp execution state for the timing simulator."""

from __future__ import annotations

from repro.kernels.trace import WarpTrace


class WarpRunner:
    """Tracks one resident warp's progress through its instruction
    stream.

    ``outstanding_max`` is the latest readiness time among the demand
    loads issued since the last scoreboard wait — the in-order core
    stalls a ``wait`` compute instruction until then (and a structural
    stall parks the warp at ``resume_time``).
    """

    __slots__ = (
        "trace",
        "pc",
        "compute_remaining",
        "txn_index",
        "outstanding_max",
        "resume_time",
        "done",
    )

    def __init__(self, trace: WarpTrace):
        self.trace = trace
        self.pc = 0
        self.compute_remaining = 0
        self.txn_index = 0
        self.outstanding_max = 0
        self.resume_time = 0
        self.done = not trace.insts

    @property
    def warp_id(self) -> int:
        return self.trace.warp_id

    def current(self):
        """The instruction at the warp's program counter."""
        return self.trace.insts[self.pc]

    def advance(self) -> None:
        """Move to the next instruction; mark done at stream end."""
        self.pc += 1
        self.compute_remaining = 0
        self.txn_index = 0
        if self.pc >= len(self.trace.insts):
            self.done = True
