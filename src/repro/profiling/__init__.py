"""Access-pattern profiling: the paper's Section III analyses.

* :mod:`access_profile` — per-block read-transaction counts (Fig 3).
* :mod:`warp_sharing` — warp-sharing percentages per block (Fig 4).
* :mod:`hot_blocks` — hot / rest classification of memory blocks.
* :mod:`hot_objects` — object ranking and Table III statistics.
* :mod:`temporal` — temporal-locality evidence for Observation IV.
* :mod:`miss_profile` — per-block L1-miss counts (the Fig 8 weights).
* :mod:`instrument` — NVBit-style automated discovery for unknown apps.
"""

from repro.profiling.access_profile import AccessProfile, profile_trace
from repro.profiling.hot_blocks import (
    HotBlockClassification,
    classify_hot_blocks,
)
from repro.profiling.hot_objects import ObjectStats, rank_objects, table3_row
from repro.profiling.miss_profile import l1_miss_profile
from repro.profiling.temporal import temporal_locality
from repro.profiling.warp_sharing import warp_sharing_curve

__all__ = [
    "AccessProfile",
    "profile_trace",
    "HotBlockClassification",
    "classify_hot_blocks",
    "ObjectStats",
    "rank_objects",
    "table3_row",
    "l1_miss_profile",
    "temporal_locality",
    "warp_sharing_curve",
]
