"""Instrumentation-style automated profiling for unknown applications.

The paper identifies hot data objects by manual source-code analysis
and notes the process "can be automated with binary instrumentation
tools such as NVBit" (Section IV-C).  This module is that automation:
a callback-based tracer (the NVBit idiom) plus a one-call pipeline
that goes from an application to its discovered hot objects without
consulting the app's declared (source-analysis) answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.arch.address_space import DeviceMemory
from repro.kernels.base import GpuApplication
from repro.kernels.trace import AppTrace, Load, Store
from repro.profiling.access_profile import AccessProfile, profile_trace
from repro.profiling.hot_blocks import classify_hot_blocks
from repro.profiling.hot_objects import discover_hot_objects


class MemoryCallback(Protocol):
    """Callback signature: one call per memory instruction."""

    def __call__(self, kernel: str, warp_id: int, is_load: bool,
                 obj: str, addrs: tuple[int, ...]) -> None: ...


class MemoryTracer:
    """Replays a trace through registered callbacks, one event per
    memory instruction — the shape of an NVBit instrumentation pass."""

    def __init__(self) -> None:
        self._callbacks: list[MemoryCallback] = []

    def register(self, callback: MemoryCallback) -> None:
        """Subscribe a callback to every memory instruction."""
        self._callbacks.append(callback)

    def run(self, trace: AppTrace) -> int:
        """Dispatch every memory instruction; returns the event count."""
        events = 0
        for kernel in trace.kernels:
            for warp in kernel.iter_warps():
                for inst in warp.insts:
                    if isinstance(inst, (Load, Store)):
                        is_load = isinstance(inst, Load)
                        for cb in self._callbacks:
                            cb(kernel.name, warp.warp_id, is_load,
                               inst.obj, inst.addrs)
                        events += 1
        return events


@dataclass
class DiscoveryResult:
    """Outcome of automated hot-object discovery for one application."""

    app_name: str
    profile: AccessProfile
    hot_objects: list[str]
    declared_hot: set[str]

    @property
    def matches_declaration(self) -> bool:
        """Did instrumentation find the same hot set the paper's manual
        source analysis declares?"""
        return set(self.hot_objects) == self.declared_hot


def discover(
    app: GpuApplication,
    memory: DeviceMemory | None = None,
    hot_factor: float = 8.0,
) -> DiscoveryResult:
    """Full automated pipeline: trace -> profile -> hot blocks -> hot
    objects, ignoring the app's declared answers (then reporting
    agreement with them)."""
    if memory is None:
        memory = app.fresh_memory()
    trace = app.build_trace(memory)
    profile = profile_trace(trace, memory)
    classification = classify_hot_blocks(profile, hot_factor=hot_factor)
    hot = discover_hot_objects(profile, memory, classification)
    return DiscoveryResult(
        app_name=app.name,
        profile=profile,
        hot_objects=hot,
        declared_hot=set(app.hot_object_names),
    )
