"""Hot-block classification (the paper's Figure 5, step 1).

The paper splits the data memory blocks into *hot memory blocks* and
*the rest* from the sorted access-count profile of Figure 3.  We make
that split algorithmic and conservative:

a block is hot when its read count is simultaneously

* at least ``hot_factor`` times the median block's count (it sits far
  above the bulk of the distribution), and
* at least ``1/hot_factor`` of the hottest block's count (it belongs
  to the top plateau of the sorted curve, not the gentle mid-slope).

Applications with uniform (C-BlackScholes) or gently ramping
(P-GRAMSCHM) profiles therefore classify *zero* blocks as hot,
matching the paper's exclusion of those applications, and moderately
reused intermediates (e.g. A-SRAD's diffused image) are kept out of
the hot set that the schemes would have to replicate.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.profiling.access_profile import AccessProfile


@dataclass(frozen=True)
class HotBlockClassification:
    app_name: str
    hot_addrs: frozenset[int]
    rest_addrs: frozenset[int]
    hot_factor: float
    median_count: float

    @property
    def has_hot_blocks(self) -> bool:
        return bool(self.hot_addrs)

    @property
    def hot_fraction_of_blocks(self) -> float:
        total = len(self.hot_addrs) + len(self.rest_addrs)
        return len(self.hot_addrs) / total if total else 0.0

    def hot_access_share(self, profile: AccessProfile) -> float:
        """Fraction of all read transactions absorbed by hot blocks."""
        total = sum(profile.block_reads.values())
        if not total:
            return 0.0
        hot = sum(profile.block_reads[a] for a in self.hot_addrs)
        return hot / total


def classify_hot_blocks(
    profile: AccessProfile, hot_factor: float = 8.0
) -> HotBlockClassification:
    """Split profiled blocks into hot and rest.

    ``hot_factor`` is the multiple of the median per-block read count a
    block must exceed to be hot.  The paper's applications are robust
    to this knob across roughly 4-50x because their hot blocks sit
    orders of magnitude above the median (Fig 3).
    """
    if hot_factor <= 1.0:
        raise ValueError("hot_factor must exceed 1.0")
    counts = profile.block_reads
    if not counts:
        return HotBlockClassification(
            profile.app_name, frozenset(), frozenset(), hot_factor, 0.0
        )
    median = float(statistics.median(counts.values()))
    max_count = max(counts.values())
    threshold = max(
        hot_factor * max(median, 1.0), max_count / hot_factor
    )
    hot = frozenset(a for a, c in counts.items() if c >= threshold)
    rest = frozenset(counts) - hot
    return HotBlockClassification(
        profile.app_name, hot, rest, hot_factor, median
    )
