"""Object-level ranking and Table III statistics.

Table III reports, per application: the input data objects sorted by
access count, which of them are hot, the hot objects' footprint as a
percentage of total application memory, and the percentage of read
accesses they absorb.  This module computes all four from a profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.address_space import DeviceMemory
from repro.kernels.base import GpuApplication
from repro.profiling.access_profile import AccessProfile
from repro.profiling.hot_blocks import HotBlockClassification


@dataclass(frozen=True)
class ObjectStats:
    name: str
    reads: int
    n_blocks: int
    nbytes: int
    read_only: bool

    @property
    def reads_per_block(self) -> float:
        return self.reads / self.n_blocks if self.n_blocks else 0.0


def rank_objects(
    profile: AccessProfile,
    memory: DeviceMemory,
    read_only_inputs: bool = True,
) -> list[ObjectStats]:
    """Objects sorted by per-block read intensity, hottest first.

    Per-block intensity (reads / blocks) is the ranking that matches
    the paper's bold/normal split: a tiny weights array re-read by
    every CTA outranks a large streamed input even when the latter's
    *total* read count is higher.
    """
    stats = []
    for obj in memory.objects:
        if read_only_inputs and not obj.read_only:
            continue
        stats.append(
            ObjectStats(
                name=obj.name,
                reads=profile.reads_to(obj.name),
                n_blocks=obj.n_blocks,
                nbytes=obj.nbytes,
                read_only=obj.read_only,
            )
        )
    stats.sort(key=lambda s: s.reads_per_block, reverse=True)
    return stats


def discover_hot_objects(
    profile: AccessProfile,
    memory: DeviceMemory,
    classification: HotBlockClassification,
    min_hot_block_share: float = 0.5,
) -> list[str]:
    """Objects whose blocks are predominantly hot, intensity-ordered.

    This is the automated (instrumentation-style) counterpart of the
    paper's manual source-code analysis: an input object is hot when at
    least ``min_hot_block_share`` of its blocks were classified hot.
    """
    hot = classification.hot_addrs
    names = []
    for stats in rank_objects(profile, memory):
        obj = memory.object(stats.name)
        owned_hot = sum(1 for a in obj.block_addrs() if a in hot)
        if owned_hot / obj.n_blocks >= min_hot_block_share:
            names.append(stats.name)
    return names


@dataclass(frozen=True)
class Table3Row:
    """One application's row of Table III."""

    app_name: str
    objects_by_importance: list[str]
    hot_objects: list[str]
    hot_footprint_pct: float
    hot_access_pct: float


def table3_row(
    app: GpuApplication,
    profile: AccessProfile,
    memory: DeviceMemory,
) -> Table3Row:
    """Compute the Table III statistics using the app's declared
    (source-code-analysis) hot objects."""
    hot_names = [
        n for n in app.object_importance if n in app.hot_object_names
    ]
    hot_bytes = sum(memory.object(n).nbytes for n in hot_names)
    total_bytes = sum(obj.nbytes for obj in memory.objects)
    footprint = 100.0 * hot_bytes / total_bytes if total_bytes else 0.0
    access_pct = 100.0 * profile.object_share(hot_names)
    return Table3Row(
        app_name=app.name,
        objects_by_importance=list(app.object_importance),
        hot_objects=hot_names,
        hot_footprint_pct=footprint,
        hot_access_pct=access_pct,
    )
