"""Per-block L1-miss profiling — the weights of the paper's Figure 8.

The reliability evaluation injects faults into blocks with probability
proportional to their number of L1-*missed* accesses, because a missed
access is the one that travels to the (fault-prone) L2/DRAM.  This
module replays a trace through per-SM L1 tag arrays — CTAs assigned
round-robin to SMs, resident warps interleaved round-robin, matching
the timing simulator's scheduling policy closely enough for weighting
purposes — and returns miss counts per block.
"""

from __future__ import annotations

from collections import Counter

from repro.arch.cache import Cache, CacheConfig
from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.kernels.trace import AppTrace, Load


def l1_miss_profile(
    trace: AppTrace, config: GpuConfig = PAPER_CONFIG
) -> dict[int, int]:
    """Replay the trace through L1 tag arrays; block addr -> miss count.

    Stores are write-through/no-allocate so only loads probe tags.
    """
    caches = [
        Cache(
            CacheConfig(config.l1_size_bytes, config.l1_assoc,
                        config.line_bytes),
            name=f"L1[{sm}]",
        )
        for sm in range(config.n_sms)
    ]
    misses: Counter[int] = Counter()
    for kernel in trace.kernels:
        # CTA -> SM round-robin, then interleave that SM's resident
        # warps one instruction at a time.
        per_sm_streams: list[list[list]] = [[] for _ in caches]
        for i, cta in enumerate(kernel.ctas):
            sm = i % len(caches)
            for warp in cta.warps:
                per_sm_streams[sm].append(
                    [inst for inst in warp.insts
                     if isinstance(inst, Load)]
                )
        for sm, streams in enumerate(per_sm_streams):
            cache = caches[sm]
            depth = max((len(s) for s in streams), default=0)
            for step in range(depth):
                for stream in streams:
                    if step < len(stream):
                        for addr in stream[step].addrs:
                            if not cache.access(addr):
                                misses[addr] += 1
    return dict(misses)


def object_miss_counts(
    miss_profile: dict[int, int], block_owner: dict[int, str]
) -> dict[str, int]:
    """Aggregate per-block misses up to their owning objects."""
    totals: Counter[str] = Counter()
    for addr, count in miss_profile.items():
        owner = block_owner.get(addr)
        if owner is not None:
            totals[owner] += count
    return dict(totals)
