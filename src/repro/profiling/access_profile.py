"""Per-block read-access profiling (the paper's Figure 3 analysis).

The profile counts warp-level read *transactions* per 128-byte data
memory block — the same granularity at which Table III's access
percentages are reported (a warp-wide broadcast is one access, a
32-way uncoalesced load is thirty-two).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.kernels.trace import AppTrace, Load


@dataclass
class AccessProfile:
    """Aggregated read-access statistics for one application trace."""

    app_name: str
    #: block base address -> read-transaction count
    block_reads: dict[int, int]
    #: object name -> total read transactions
    object_reads: dict[str, int]
    #: block base address -> object name owning it
    block_owner: dict[int, str]
    #: per kernel: block -> number of distinct warps reading it
    kernel_block_warps: dict[str, dict[int, int]]
    #: per kernel: total warps launched
    kernel_warps: dict[str, int]

    @property
    def total_reads(self) -> int:
        return sum(self.object_reads.values())

    @property
    def n_blocks(self) -> int:
        return len(self.block_reads)

    def sorted_counts(self) -> list[tuple[int, int]]:
        """(block addr, count) sorted by count ascending — the x-axis
        ordering of Figure 3."""
        return sorted(self.block_reads.items(), key=lambda kv: (kv[1], kv[0]))

    def normalized_curve(self) -> np.ndarray:
        """Counts sorted ascending, normalized to the maximum (Fig 3 y)."""
        counts = np.array(
            sorted(self.block_reads.values()), dtype=np.float64
        )
        if counts.size == 0:
            return counts
        return counts / counts.max()

    def max_min_ratio(self) -> float:
        """Ratio of most- to least-accessed block (4732x for C-NN in
        the paper)."""
        counts = [c for c in self.block_reads.values() if c > 0]
        if not counts:
            return 1.0
        return max(counts) / min(counts)

    def reads_to(self, object_name: str) -> int:
        """Total read transactions to one object (0 if never read)."""
        return self.object_reads.get(object_name, 0)

    def object_share(self, object_names) -> float:
        """Fraction of all read transactions going to the named objects."""
        total = self.total_reads
        if total == 0:
            return 0.0
        return sum(self.reads_to(n) for n in object_names) / total

    def warp_share(self, block_addr: int) -> float:
        """Max over kernels of (warps reading the block / warps launched)
        — the y-axis of Figure 4."""
        best = 0.0
        for kernel, per_block in self.kernel_block_warps.items():
            n = per_block.get(block_addr)
            if n:
                best = max(best, n / self.kernel_warps[kernel])
        return best


def profile_trace(trace: AppTrace, memory: DeviceMemory) -> AccessProfile:
    """Profile read accesses of a trace against the app's memory map."""
    block_reads: Counter[int] = Counter()
    object_reads: Counter[str] = Counter()
    kernel_block_warps: dict[str, dict[int, int]] = {}
    kernel_warps: dict[str, int] = {}

    for kernel in trace.kernels:
        warps_seen: dict[int, set[int]] = defaultdict(set)
        n_warps = 0
        for warp in kernel.iter_warps():
            n_warps += 1
            for inst in warp.insts:
                if isinstance(inst, Load):
                    object_reads[inst.obj] += len(inst.addrs)
                    for addr in inst.addrs:
                        block_reads[addr] += 1
                        warps_seen[addr].add(warp.warp_id)
        # Aggregate re-launched kernels (e.g. GramSchmidt's per-column
        # launches) under one name prefix for Fig 4 purposes.
        kernel_block_warps[kernel.name] = {
            addr: len(s) for addr, s in warps_seen.items()
        }
        kernel_warps[kernel.name] = max(n_warps, 1)

    block_owner: dict[int, str] = {}
    for obj in memory.objects:
        for addr in obj.block_addrs():
            block_owner[addr] = obj.name

    unknown = set(block_reads) - set(block_owner)
    if unknown:
        sample = sorted(unknown)[:3]
        raise ValueError(
            f"{trace.app_name}: trace reads blocks outside any "
            f"allocation, e.g. {[hex(a) for a in sample]}"
        )

    return AccessProfile(
        app_name=trace.app_name,
        block_reads=dict(block_reads),
        object_reads=dict(object_reads),
        block_owner=block_owner,
        kernel_block_warps=kernel_block_warps,
        kernel_warps=kernel_warps,
    )
