"""Warp-sharing analysis (the paper's Figure 4).

For each data memory block: the percentage of a kernel's active warps
that read it, plotted against blocks sorted by total read count.  Hot
blocks being shared by (nearly) all warps is Observation II — the
reason a single faulty hot block corrupts the whole computation.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.access_profile import AccessProfile


def warp_sharing_curve(profile: AccessProfile) -> np.ndarray:
    """Warp-share percentages with blocks sorted by read count ascending
    (the Figure 4 series)."""
    ordered = profile.sorted_counts()
    return np.array(
        [100.0 * profile.warp_share(addr) for addr, _count in ordered]
    )


def hot_vs_rest_sharing(
    profile: AccessProfile, hot_addrs
) -> tuple[float, float]:
    """Mean warp-share percentage of hot blocks vs the rest."""
    hot_addrs = set(hot_addrs)
    hot_shares = []
    rest_shares = []
    for addr in profile.block_reads:
        share = 100.0 * profile.warp_share(addr)
        if addr in hot_addrs:
            hot_shares.append(share)
        else:
            rest_shares.append(share)
    hot_mean = float(np.mean(hot_shares)) if hot_shares else 0.0
    rest_mean = float(np.mean(rest_shares)) if rest_shares else 0.0
    return hot_mean, rest_mean
