"""Temporal-locality analysis (Observation IV).

For each block we record the positions of its read transactions in
the global (kernel-serialized, warp-interleaved) access sequence and
report the mean reuse gap.  The paper's observation: hot data objects
are either accessed with small uniform strides or fit in a handful of
blocks, so their reuse gaps are short — which is why they stay
L1-resident and replication of L1 *misses* is nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.trace import AppTrace, Load


@dataclass(frozen=True)
class TemporalStats:
    """Reuse statistics for a set of blocks."""

    mean_reuse_gap: float
    median_reuse_gap: float
    reuse_count: int


def temporal_locality(trace: AppTrace) -> dict[int, float]:
    """Mean reuse gap (in transactions) per block; single-access blocks
    get ``inf``."""
    last_seen: dict[int, int] = {}
    gap_sum: dict[int, int] = {}
    gap_count: dict[int, int] = {}
    position = 0
    for kernel in trace.kernels:
        # Interleave warps round-robin so the sequence approximates the
        # concurrent execution order rather than one-warp-at-a-time.
        streams = [
            [i for i in warp.insts if isinstance(i, Load)]
            for warp in kernel.iter_warps()
        ]
        depth = max((len(s) for s in streams), default=0)
        for step in range(depth):
            for stream in streams:
                if step < len(stream):
                    for addr in stream[step].addrs:
                        prev = last_seen.get(addr)
                        if prev is not None:
                            gap_sum[addr] = gap_sum.get(addr, 0) \
                                + position - prev
                            gap_count[addr] = gap_count.get(addr, 0) + 1
                        last_seen[addr] = position
                        position += 1
    gaps: dict[int, float] = {}
    for addr in last_seen:
        if addr in gap_count:
            gaps[addr] = gap_sum[addr] / gap_count[addr]
        else:
            gaps[addr] = float("inf")
    return gaps


def summarize_gaps(gaps: dict[int, float], addrs) -> TemporalStats:
    """Aggregate reuse gaps over a set of block addresses."""
    values = [
        gaps[a] for a in addrs
        if a in gaps and np.isfinite(gaps[a])
    ]
    if not values:
        return TemporalStats(float("inf"), float("inf"), 0)
    arr = np.array(values)
    return TemporalStats(
        float(arr.mean()), float(np.median(arr)), len(values)
    )
