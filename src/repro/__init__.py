"""repro — a full reproduction of "Data-centric Reliability Management
in GPUs" (Kadam, Smirni, Jog; DSN 2021).

The package builds, in pure Python:

* :mod:`repro.arch` — the GPU hardware substrate (device memory,
  SECDED ECC, caches, MSHRs, interconnect, DRAM) per Table I,
* :mod:`repro.sim` — a trace-driven timing simulator with warp-level
  latency tolerance,
* :mod:`repro.kernels` — the evaluated GPGPU workloads with functional
  execution and coalesced memory traces,
* :mod:`repro.profiling` — hot-block/hot-object access analysis
  (Figs 3-4, Table III),
* :mod:`repro.faults` — the multi-bit stuck-at fault-injection
  campaign framework (Figs 6, 9),
* :mod:`repro.core` — the paper's contribution: partial-replication
  detection and detection-and-correction schemes plus the end-to-end
  :class:`~repro.core.manager.ReliabilityManager`,
* :mod:`repro.analysis` — statistics, reports, and the per-figure data
  generators the benchmark harness prints,
* :mod:`repro.obs` — observability: a metrics registry shared by the
  simulator, campaigns and the executor, plus deterministic per-run
  telemetry records (JSONL) with a validating reader and summarizer.

Quickstart::

    from repro import ReliabilityManager, create_app

    app = create_app("P-BICG")
    manager = ReliabilityManager(app)
    report = manager.evaluate(scheme="correction", runs=100)
    print(report.summary())
"""

from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.core.manager import ReliabilityManager
from repro.core.schemes import (
    BaselineScheme,
    CorrectionScheme,
    DetectionScheme,
)
from repro.errors import FaultDetected, KernelCrash, ReproError
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.outcomes import Outcome
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
    resilience_apps,
)
from repro.obs import MetricsRegistry, RunRecord, TelemetryWriter
from repro.profiling.hot_blocks import classify_hot_blocks
from repro.profiling.access_profile import profile_trace
from repro.runtime import CampaignExecutor

__version__ = "1.0.0"

__all__ = [
    "GpuConfig",
    "PAPER_CONFIG",
    "ReliabilityManager",
    "BaselineScheme",
    "DetectionScheme",
    "CorrectionScheme",
    "FaultDetected",
    "KernelCrash",
    "ReproError",
    "Campaign",
    "CampaignConfig",
    "CampaignExecutor",
    "Outcome",
    "MetricsRegistry",
    "RunRecord",
    "TelemetryWriter",
    "APPLICATIONS",
    "FLAT_APPLICATIONS",
    "create_app",
    "resilience_apps",
    "classify_hot_blocks",
    "profile_trace",
    "__version__",
]
