"""Fault-site (block) selection policies.

Two experiments in the paper select blocks differently:

* the *motivation* experiment (Figs 5-6) picks blocks uniformly from
  either the hot set or the rest-of-memory set, to contrast their
  vulnerability;
* the *evaluation* experiment (Figs 8-9) picks blocks from the entire
  application space with probability proportional to each block's
  L1-missed access count, because only missed accesses travel to the
  fault-prone L2/DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import RngStream


class UniformSampler:
    """Uniform without-replacement draws from a fixed address pool.

    A plain picklable class (not a closure) so selections can cross
    process boundaries when a campaign fans out over workers.
    """

    def __init__(self, pool: Sequence[int]):
        self.pool = tuple(pool)

    def __call__(self, rng: RngStream, n_blocks: int) -> list[int]:
        picks = rng.sample_indices(len(self.pool), n_blocks)
        return [self.pool[i] for i in picks]


class WeightedSampler:
    """Weighted without-replacement draws from a fixed address pool.

    Normalizes the weight vector once at construction; each draw then
    consumes the generator exactly like
    :meth:`~repro.utils.rng.RngStream.weighted_indices`, keeping
    outcomes bit-identical while skipping the per-run normalization.
    Picklable, like :class:`UniformSampler`.
    """

    def __init__(self, pool: Sequence[int], weights: Sequence[int]):
        self.pool = tuple(pool)
        self.weights = tuple(weights)
        w = np.asarray(self.weights, dtype=np.float64)
        self._nonzero = int(np.count_nonzero(w))
        self._p = w / w.sum()

    def __getstate__(self):
        return {"pool": self.pool, "weights": self.weights}

    def __setstate__(self, state):
        self.__init__(state["pool"], state["weights"])

    def __call__(self, rng: RngStream, n_blocks: int) -> list[int]:
        if n_blocks > self._nonzero:
            raise ValueError(
                f"cannot draw {n_blocks} distinct indices from "
                f"{self._nonzero} non-zero-weight items"
            )
        picks = rng.prepared_weighted_indices(self._p, n_blocks)
        return [self.pool[i] for i in picks]


@dataclass(frozen=True)
class BlockSelection:
    """A named block-sampling policy."""

    name: str
    #: callable(rng, n_blocks) -> list of block addresses
    sampler: Callable[[RngStream, int], list[int]]
    population: int

    def pick(self, rng: RngStream, n_blocks: int) -> list[int]:
        """Select ``n_blocks`` distinct blocks.

        When the population is smaller than ``n_blocks`` (e.g. the
        5-block experiment against A-Laplacian's 3 hot blocks) every
        block in the population is faulted instead — the maximum
        injectable damage for that space.
        """
        if n_blocks <= 0:
            raise ConfigError("must select at least one block")
        n_blocks = min(n_blocks, self.population)
        addrs = self.sampler(rng, n_blocks)
        if len(set(addrs)) != n_blocks:
            raise ConfigError(f"{self.name}: sampler returned duplicates")
        return addrs


def uniform_selection(addrs: Sequence[int], name: str = "uniform") \
        -> BlockSelection:
    """Uniform sampling without replacement from a fixed block set."""
    pool = sorted(set(addrs))
    if not pool:
        raise ConfigError(f"{name}: empty block population")
    return BlockSelection(name, UniformSampler(pool), len(pool))


def hot_selection(hot_addrs: Sequence[int]) -> BlockSelection:
    """Uniform over the hot memory blocks (Fig 5, hot arm)."""
    return uniform_selection(hot_addrs, name="hot-blocks")


def rest_selection(rest_addrs: Sequence[int]) -> BlockSelection:
    """Uniform over the non-hot blocks (Fig 5, rest arm)."""
    return uniform_selection(rest_addrs, name="rest-blocks")


def _weighted(counts: dict[int, int], name: str) -> BlockSelection:
    items = sorted(
        (addr, count) for addr, count in counts.items() if count > 0
    )
    if not items:
        raise ConfigError(f"{name} selection: no weighted blocks")
    pool = [addr for addr, _count in items]
    weights = [count for _addr, count in items]
    return BlockSelection(name, WeightedSampler(pool, weights), len(pool))


def miss_weighted_selection(miss_counts: dict[int, int]) -> BlockSelection:
    """Probability proportional to simulated per-block L1 misses.

    This is the literal Fig 8 policy.  Note the scale caveat: at this
    repo's reduced input sizes the hot objects fit comfortably in the
    16KB L1 (at the paper's sizes they are commensurate with it and
    thrash), so the literal policy starves hot blocks of faults.  The
    evaluation benches therefore default to
    :func:`access_weighted_selection`; see DESIGN.md.
    """
    return _weighted(miss_counts, "miss-weighted")


def access_weighted_selection(
    read_counts: dict[int, int]
) -> BlockSelection:
    """Probability proportional to per-block read transactions.

    Equivalent to the Fig 8 miss-weighted policy under the paper-scale
    assumption that the L1 is thrashed by streaming data (every read
    transaction is then an L2/DRAM fetch, i.e. a fault-exposure
    event).  This restores, at reduced scale, the exposure pattern the
    paper's full-size workloads have.
    """
    return _weighted(read_counts, "access-weighted")
