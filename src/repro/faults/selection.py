"""Fault-site (block) selection policies.

Two experiments in the paper select blocks differently:

* the *motivation* experiment (Figs 5-6) picks blocks uniformly from
  either the hot set or the rest-of-memory set, to contrast their
  vulnerability;
* the *evaluation* experiment (Figs 8-9) picks blocks from the entire
  application space with probability proportional to each block's
  L1-missed access count, because only missed accesses travel to the
  fault-prone L2/DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.arch.address_space import BLOCK_BYTES
from repro.errors import ConfigError
from repro.utils.rng import RngStream


class UniformSampler:
    """Uniform without-replacement draws from a fixed address pool.

    A plain picklable class (not a closure) so selections can cross
    process boundaries when a campaign fans out over workers.
    """

    def __init__(self, pool: Sequence[int]):
        self.pool = tuple(pool)

    def __call__(self, rng: RngStream, n_blocks: int) -> list[int]:
        picks = rng.sample_indices(len(self.pool), n_blocks)
        return [self.pool[i] for i in picks]


class WeightedSampler:
    """Weighted without-replacement draws from a fixed address pool.

    Normalizes the weight vector once at construction; each draw then
    consumes the generator exactly like
    :meth:`~repro.utils.rng.RngStream.weighted_indices`, keeping
    outcomes bit-identical while skipping the per-run normalization.
    Picklable, like :class:`UniformSampler`.
    """

    def __init__(self, pool: Sequence[int], weights: Sequence[int]):
        self.pool = tuple(pool)
        self.weights = tuple(weights)
        w = np.asarray(self.weights, dtype=np.float64)
        self._nonzero = int(np.count_nonzero(w))
        self._p = w / w.sum()

    def __getstate__(self):
        return {"pool": self.pool, "weights": self.weights}

    def __setstate__(self, state):
        self.__init__(state["pool"], state["weights"])

    def __call__(self, rng: RngStream, n_blocks: int) -> list[int]:
        if n_blocks > self._nonzero:
            raise ValueError(
                f"cannot draw {n_blocks} distinct indices from "
                f"{self._nonzero} non-zero-weight items"
            )
        picks = rng.prepared_weighted_indices(self._p, n_blocks)
        return [self.pool[i] for i in picks]


@dataclass(frozen=True)
class BlockSelection:
    """A named block-sampling policy."""

    name: str
    #: callable(rng, n_blocks) -> list of block addresses
    sampler: Callable[[RngStream, int], list[int]]
    population: int

    def pick(self, rng: RngStream, n_blocks: int) -> list[int]:
        """Select ``n_blocks`` distinct blocks.

        When the population is smaller than ``n_blocks`` (e.g. the
        5-block experiment against A-Laplacian's 3 hot blocks) every
        block in the population is faulted instead — the maximum
        injectable damage for that space.
        """
        if n_blocks <= 0:
            raise ConfigError("must select at least one block")
        n_blocks = min(n_blocks, self.population)
        addrs = self.sampler(rng, n_blocks)
        if len(set(addrs)) != n_blocks:
            raise ConfigError(f"{self.name}: sampler returned duplicates")
        return addrs


def uniform_selection(addrs: Sequence[int], name: str = "uniform") \
        -> BlockSelection:
    """Uniform sampling without replacement from a fixed block set."""
    pool = sorted(set(addrs))
    if not pool:
        raise ConfigError(f"{name}: empty block population")
    return BlockSelection(name, UniformSampler(pool), len(pool))


def hot_selection(hot_addrs: Sequence[int]) -> BlockSelection:
    """Uniform over the hot memory blocks (Fig 5, hot arm)."""
    return uniform_selection(hot_addrs, name="hot-blocks")


def rest_selection(rest_addrs: Sequence[int]) -> BlockSelection:
    """Uniform over the non-hot blocks (Fig 5, rest arm)."""
    return uniform_selection(rest_addrs, name="rest-blocks")


def _weighted(counts: dict[int, int], name: str) -> BlockSelection:
    items = sorted(
        (addr, count) for addr, count in counts.items() if count > 0
    )
    if not items:
        raise ConfigError(f"{name} selection: no weighted blocks")
    pool = [addr for addr, _count in items]
    weights = [count for _addr, count in items]
    return BlockSelection(name, WeightedSampler(pool, weights), len(pool))


def miss_weighted_selection(miss_counts: dict[int, int]) -> BlockSelection:
    """Probability proportional to simulated per-block L1 misses.

    This is the literal Fig 8 policy.  Note the scale caveat: at this
    repo's reduced input sizes the hot objects fit comfortably in the
    16KB L1 (at the paper's sizes they are commensurate with it and
    thrash), so the literal policy starves hot blocks of faults.  The
    evaluation benches therefore default to
    :func:`access_weighted_selection`; see DESIGN.md.
    """
    return _weighted(miss_counts, "miss-weighted")


def access_weighted_selection(
    read_counts: dict[int, int]
) -> BlockSelection:
    """Probability proportional to per-block read transactions.

    Equivalent to the Fig 8 miss-weighted policy under the paper-scale
    assumption that the L1 is thrashed by streaming data (every read
    transaction is then an L2/DRAM fetch, i.e. a fault-exposure
    event).  This restores, at reduced scale, the exposure pattern the
    paper's full-size workloads have.
    """
    return _weighted(read_counts, "access-weighted")


# ----------------------------------------------------------------------
# Stratified sampling over fault sites
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Stratum:
    """One disjoint slice of the fault-site population.

    ``weight`` is the stratum's share of the target exposure
    distribution (e.g. its fraction of all read transactions) — the
    ``W_h`` that recombines per-stratum tallies into an unbiased
    overall estimate via
    :func:`repro.utils.stats.stratified_interval`.
    """

    name: str
    weight: float
    selection: BlockSelection


class StratifiedSampler:
    """Capacity-aware two-stage draws over disjoint strata.

    Each of the ``n_blocks`` slots first draws a stratum with
    probability proportional to the stratum weights (a stratum whose
    remaining capacity is exhausted drops out of the draw), then the
    per-stratum counts are realized with each stratum's own
    without-replacement sampler.  All draws consume the one ``rng``
    stream sequentially, so outcomes are a pure function of the run
    seed — stratification changes *where* faults land, never breaks
    the campaign's determinism contract.  Picklable, like the flat
    samplers.
    """

    def __init__(self, strata: Sequence[Stratum]):
        self.strata = tuple(strata)

    def __call__(self, rng: RngStream, n_blocks: int) -> list[int]:
        caps = [s.selection.population for s in self.strata]
        counts = [0] * len(caps)
        for _ in range(n_blocks):
            weights = [
                s.weight if counts[i] < caps[i] else 0.0
                for i, s in enumerate(self.strata)
            ]
            counts[rng.weighted_index(weights)] += 1
        picks: list[int] = []
        for count, stratum in zip(counts, self.strata):
            if count:
                picks.extend(stratum.selection.pick(rng, count))
        return picks


@dataclass(frozen=True)
class StratifiedSelection(BlockSelection):
    """A block selection partitioned into named, weighted strata.

    Behaves exactly like any :class:`BlockSelection` toward the
    campaign; additionally exposes the strata and an address →
    stratum-index resolver so per-stratum tallies can be rebuilt from
    run records after the fact.
    """

    strata: tuple[Stratum, ...] = field(default=())

    def stratum_of(self, addr: int) -> int:
        """Index of the stratum whose pool holds block ``addr``."""
        mapping = self.__dict__.get("_addr_stratum")
        if mapping is None:
            mapping = {}
            for i, stratum in enumerate(self.strata):
                for a in stratum.selection.sampler.pool:
                    mapping[a] = i
            object.__setattr__(self, "_addr_stratum", mapping)
        try:
            return mapping[addr]
        except KeyError:
            raise ConfigError(
                f"{self.name}: block {addr:#x} is in no stratum"
            ) from None


def stratified_selection(
    strata: Sequence[Stratum], name: str = "stratified"
) -> StratifiedSelection:
    """Compose disjoint strata into one selection policy.

    Every stratum's underlying sampler must expose its block ``pool``
    (all policies in this module do); pools must be pairwise disjoint
    so each fault site belongs to exactly one stratum and the
    recombined estimate stays unbiased.
    """
    strata = tuple(strata)
    if not strata:
        raise ConfigError(f"{name}: no strata")
    seen: set[int] = set()
    population = 0
    total_weight = 0.0
    for stratum in strata:
        if stratum.weight < 0:
            raise ConfigError(
                f"{name}: stratum {stratum.name!r} has negative weight"
            )
        total_weight += stratum.weight
        pool = getattr(stratum.selection.sampler, "pool", None)
        if pool is None:
            raise ConfigError(
                f"{name}: stratum {stratum.name!r} sampler exposes no "
                "block pool"
            )
        overlap = seen.intersection(pool)
        if overlap:
            raise ConfigError(
                f"{name}: stratum {stratum.name!r} overlaps an earlier "
                f"stratum at block {min(overlap):#x}"
            )
        seen.update(pool)
        population += stratum.selection.population
    if total_weight <= 0:
        raise ConfigError(f"{name}: stratum weights must not all be zero")
    return StratifiedSelection(
        name, StratifiedSampler(strata), population, strata
    )


def _object_block_counts(
    read_counts: dict[int, int], obj
) -> dict[int, int]:
    end = obj.base_addr + obj.n_blocks * BLOCK_BYTES
    return {
        addr: count for addr, count in read_counts.items()
        if obj.base_addr <= addr < end and count > 0
    }


def stratify_by_object(
    read_counts: dict[int, int],
    objects: Iterable,
    name: str = "stratified",
) -> StratifiedSelection:
    """One stratum per data object, weighted by its read share.

    Within a stratum blocks are drawn access-weighted, so the overall
    exposure distribution matches :func:`access_weighted_selection`
    while every object is guaranteed proportional representation —
    the variance-reduction move for campaigns whose SDC rates differ
    strongly between objects.
    """
    strata = []
    for obj in objects:
        counts = _object_block_counts(read_counts, obj)
        if not counts:
            continue
        strata.append(Stratum(
            obj.name,
            float(sum(counts.values())),
            _weighted(counts, f"object:{obj.name}"),
        ))
    if not strata:
        raise ConfigError(f"{name}: no object has read-weighted blocks")
    return stratified_selection(strata, name)


def stratify_by_read_count(
    read_counts: dict[int, int],
    bins: int = 3,
    name: str = "stratified-reads",
) -> StratifiedSelection:
    """Strata of blocks with similar read counts (quantile bins).

    Blocks are sorted by read count and split into ``bins`` contiguous
    groups; each group samples access-weighted within itself and
    carries its total read share as the stratum weight.
    """
    if bins <= 0:
        raise ConfigError(f"{name}: bins must be positive")
    items = sorted(
        (count, addr) for addr, count in read_counts.items() if count > 0
    )
    if not items:
        raise ConfigError(f"{name}: no read-weighted blocks")
    strata = []
    for i, chunk in enumerate(np.array_split(np.arange(len(items)), bins)):
        if not len(chunk):
            continue
        counts = {
            items[j][1]: items[j][0] for j in chunk
        }
        strata.append(Stratum(
            f"bin{i}",
            float(sum(counts.values())),
            _weighted(counts, f"{name}:bin{i}"),
        ))
    return stratified_selection(strata, name)


def stratify_by_liveness(
    read_counts: dict[int, int],
    objects: Iterable,
    liveness: dict[str, object],
    name: str = "stratified-liveness",
) -> StratifiedSelection:
    """Strata of objects sharing a liveness window classification.

    ``liveness`` maps object names to
    :class:`repro.obs.trace.ObjectLiveness` digests (from
    :meth:`~repro.obs.trace.GoldenTimeline.liveness`); objects whose
    golden-run windows match (pure inputs vs read/write working sets)
    pool into one stratum, weighted by their combined read share.
    Dead objects (never read) carry no exposure and are skipped.
    """
    pools: dict[str, dict[int, int]] = {}
    for obj in objects:
        digest = liveness.get(obj.name)
        if digest is None or digest.window == "dead":
            continue
        counts = _object_block_counts(read_counts, obj)
        if not counts:
            continue
        pools.setdefault(digest.window, {}).update(counts)
    if not pools:
        raise ConfigError(f"{name}: no live read-weighted blocks")
    strata = [
        Stratum(
            window,
            float(sum(counts.values())),
            _weighted(counts, f"{name}:{window}"),
        )
        for window, counts in sorted(pools.items())
    ]
    return stratified_selection(strata, name)
