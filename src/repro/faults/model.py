"""The fault model: permanent multi-bit stuck-at faults in a word.

Following the paper (after Luo et al.): within a selected 128-byte
block a 32-bit word is chosen uniformly at random, and ``n_bits``
distinct bit positions of that word are made permanently stuck, each
at logic 0 or 1 with equal probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.address_space import BLOCK_BYTES
from repro.utils.rng import RngStream

WORD_BYTES = 4
WORD_BITS = 32
WORDS_PER_BLOCK = BLOCK_BYTES // WORD_BYTES


@dataclass(frozen=True)
class FaultSpec:
    """One permanent stuck-at fault cluster within a single word.

    ``bit_positions`` are bit indices within the 32-bit word (little
    endian); ``stuck_values`` are the matching stuck levels.
    """

    block_addr: int
    word_index: int  # which 32-bit word within the block (0..31)
    bit_positions: tuple[int, ...]
    stuck_values: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.block_addr % BLOCK_BYTES:
            raise ValueError(
                f"block_addr {self.block_addr:#x} is not block aligned"
            )
        if not 0 <= self.word_index < WORDS_PER_BLOCK:
            raise ValueError(f"word_index {self.word_index} out of block")
        if len(self.bit_positions) != len(self.stuck_values):
            raise ValueError("bit_positions/stuck_values length mismatch")
        if len(set(self.bit_positions)) != len(self.bit_positions):
            raise ValueError("bit positions must be distinct")
        for pos in self.bit_positions:
            if not 0 <= pos < WORD_BITS:
                raise ValueError(f"bit position {pos} outside 32-bit word")
        for val in self.stuck_values:
            if val not in (0, 1):
                raise ValueError(f"stuck value {val} must be 0 or 1")

    @property
    def n_bits(self) -> int:
        return len(self.bit_positions)

    @property
    def word_addr(self) -> int:
        return self.block_addr + self.word_index * WORD_BYTES

    def byte_level_faults(self) -> list[tuple[int, int, int]]:
        """Expand to (byte address, bit-in-byte, stuck value) triples."""
        out = []
        for pos, val in zip(self.bit_positions, self.stuck_values):
            out.append((self.word_addr + pos // 8, pos % 8, val))
        return out

    def byte_masks(self) -> dict[int, tuple[int, int]]:
        """This fault's stuck bits folded to per-byte overlay masks.

        Returns ``{byte_addr: (or_mask, and_mask)}`` — the read value
        of a faulted byte is ``(raw | or_mask) & ~and_mask``.  Bit
        positions within one fault are distinct by construction, so no
        tie-breaking applies here; merging *across* faults (where later
        faults win) is :func:`repro.faults.injector.merge_fault_masks`.

        The result is cached on the (frozen) instance — callers must
        treat it as read-only.
        """
        cached = self.__dict__.get("_byte_masks")
        if cached is not None:
            return cached
        masks: dict[int, tuple[int, int]] = {}
        for byte_addr, bit, value in self.byte_level_faults():
            or_mask, and_mask = masks.get(byte_addr, (0, 0))
            if value:
                or_mask |= 1 << bit
            else:
                and_mask |= 1 << bit
            masks[byte_addr] = (or_mask, and_mask)
        object.__setattr__(self, "_byte_masks", masks)
        return masks


def live_words(obj, block_addr: int) -> list[int]:
    """Word indices of ``block_addr`` that hold live data of ``obj``.

    Allocations are block-aligned, so the last block of a small object
    is mostly padding; the paper targets "a word within the selected
    data memory block" of *application data*, so the campaign samples
    among the words the object actually occupies.
    """
    start = max(obj.base_addr, block_addr)
    end = min(obj.end_addr, block_addr + BLOCK_BYTES)
    if start >= end:
        raise ValueError(
            f"block {block_addr:#x} holds no data of {obj.name!r}"
        )
    first = (start - block_addr) // WORD_BYTES
    last = (end - 1 - block_addr) // WORD_BYTES
    return list(range(first, last + 1))


def sample_word_fault(
    rng: RngStream,
    block_addr: int,
    n_bits: int,
    word_candidates: list[int] | None = None,
) -> FaultSpec:
    """Draw a random ``n_bits``-bit stuck-at fault in the given block.

    ``word_candidates`` restricts the target word (see
    :func:`live_words`); by default any of the 32 words may be hit.
    """
    if not 1 <= n_bits <= WORD_BITS:
        raise ValueError(f"n_bits {n_bits} outside [1, {WORD_BITS}]")
    if word_candidates is None:
        word_index = rng.choice_index(WORDS_PER_BLOCK)
    else:
        if not word_candidates:
            raise ValueError("word_candidates must not be empty")
        word_index = word_candidates[rng.choice_index(len(word_candidates))]
    positions = tuple(sorted(rng.bit_positions(WORD_BITS, n_bits)))
    values = tuple(rng.coin() for _ in positions)
    return FaultSpec(block_addr, word_index, positions, values)
