"""SECDED-in-the-loop fault filtering.

The paper assumes caches and DRAM carry SECDED ECC and focuses on the
multi-bit faults that defeat it.  This module makes that baseline
explicit: every injected stuck-at fault cluster is pushed through a
real (72,64) Hamming decode of the ECC word it lands in, and only
what *survives* the code reaches the application:

* the stuck levels match the stored bits       -> nothing happens;
* a single flipped bit                         -> corrected, dropped;
* a provably-uncorrectable pattern             -> DUE: the hardware
  raises a detected-uncorrectable-error, surfaced as a loud
  (non-silent) run outcome;
* an aliasing multi-bit pattern                -> the decoder delivers
  *miscorrected* data — the silently-wrong value is installed in
  place of the raw faulty one;
* a syndrome-zero escape                       -> the raw faulty value
  passes through untouched.

This is the quantitative version of the paper's premise (Section
II-B): with SECDED in the loop, 1-bit faults vanish and 2-bit faults
turn loud, but from 3 bits upward the delivered data is silently
wrong — exactly the gap the data-centric schemes close.

Approximation note: the delivered-diff is installed as a permanent
read overlay, which is exact for read-only data (the paper's hot
objects) and a stable-diff approximation for blocks that are
rewritten mid-run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.address_space import DeviceMemory
from repro.arch.ecc import (
    DecodeStatus,
    SecdedCodec,
    data_bit_position,
)
from repro.faults.model import FaultSpec

ECC_WORD_BYTES = 8  # one (72,64) codeword protects 64 data bits


class EccVerdict(enum.Enum):
    """What SECDED made of one injected fault cluster."""

    CLEAN = "clean"  # stuck levels equal stored bits
    CORRECTED = "corrected"  # single-bit: repaired transparently
    DUE = "due"  # detected uncorrectable error (loud)
    MISCORRECTED = "miscorrected"  # silently delivers wrong data
    ESCAPED = "escaped"  # syndrome zero: raw fault passes through


@dataclass(frozen=True)
class FilteredFault:
    """The post-ECC effect of one fault cluster."""

    verdict: EccVerdict
    #: (byte address, bit in byte, stuck value) triples describing the
    #: data the application will observe (empty unless the verdict is
    #: MISCORRECTED or ESCAPED).
    delivered_bits: tuple[tuple[int, int, int], ...] = ()


def filter_fault(
    memory: DeviceMemory, fault: FaultSpec, codec: SecdedCodec
) -> FilteredFault:
    """Push one stuck-at cluster through the SECDED decode."""
    word_addr = fault.word_addr
    ecc_base = word_addr - (word_addr % ECC_WORD_BYTES)
    raw = memory.read_block(ecc_base, ECC_WORD_BYTES)
    original = int.from_bytes(raw.tobytes(), "little")

    # Positions of the stuck bits within the 64-bit data word.
    offset_bits = (word_addr - ecc_base) * 8
    faulty = original
    for pos, value in zip(fault.bit_positions, fault.stuck_values):
        bit64 = offset_bits + pos
        if value:
            faulty |= 1 << bit64
        else:
            faulty &= ~(1 << bit64)
    if faulty == original:
        return FilteredFault(EccVerdict.CLEAN)

    codeword = codec.encode(original)
    diff = original ^ faulty
    for bit64 in range(64):
        if (diff >> bit64) & 1:
            codeword ^= 1 << data_bit_position(bit64)
    result = codec.decode(codeword)

    if result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
        return FilteredFault(EccVerdict.DUE)
    if result.data == original:
        return FilteredFault(EccVerdict.CORRECTED)

    delivered_diff = result.data ^ original
    bits = []
    for bit64 in range(64):
        if (delivered_diff >> bit64) & 1:
            byte_addr = ecc_base + bit64 // 8
            stuck_value = (result.data >> bit64) & 1
            bits.append((byte_addr, bit64 % 8, stuck_value))
    verdict = (
        EccVerdict.ESCAPED
        if result.status is DecodeStatus.NO_ERROR
        else EccVerdict.MISCORRECTED
    )
    return FilteredFault(verdict, tuple(bits))


def apply_filtered_faults(
    memory: DeviceMemory,
    faults: list[FaultSpec],
    codec: SecdedCodec | None = None,
) -> tuple[list[EccVerdict], bool]:
    """Filter every fault through SECDED and install the survivors.

    Returns (per-fault verdicts, any_due): when ``any_due`` is true the
    run terminates loudly before the application consumes anything.
    """
    codec = codec or SecdedCodec()
    verdicts = []
    any_due = False
    for fault in faults:
        filtered = filter_fault(memory, fault, codec)
        verdicts.append(filtered.verdict)
        if filtered.verdict is EccVerdict.DUE:
            any_due = True
        for byte_addr, bit, value in filtered.delivered_bits:
            memory.inject_stuck_at(byte_addr, bit, value)
    return verdicts, any_due
