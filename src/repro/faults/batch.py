"""Batched fault propagation: plan and classify N runs in one pass.

The scalar campaign path (:meth:`~repro.faults.campaign.Campaign.run_one`)
pays the full pipeline — seed derivation, memory clone, scheme
construction, functional execution, output comparison — for every run,
even though the vast majority of injected fault clusters are either
invisible (the stuck bits agree with the data underneath) or fully
absorbed by the replication scheme before they reach the kernel.  This
module batches a span of run indices and splits the lanes analytically:

* **Planning** is vectorized: per-lane seeds come from
  :func:`repro.utils.fastseed.derive_seeds` (SeedSequence as uint32
  array sweeps) and the per-lane generators are re-seeded in place via
  PCG64 state injection instead of being constructed.  The draws
  themselves replicate :meth:`Campaign.run_one` call-for-call, so the
  sampled faults are bit-identical; a reference cross-check runs on the
  first lane of every batch and the whole plan falls back to the scalar
  RNG path if it (or the module's one-time self check) ever disagrees.

* **Classification** exploits the stuck-at overlay algebra: a lane
  whose merged overlays are a no-op against the underlying bytes
  executes bitwise-identically to the fault-free run (MASKED); a lane
  whose visible divergence lies entirely in protected objects resolves
  from the fault-free read trace alone (DETECTED at the first protected
  divergent read, or CORRECTED with the per-read vote counts).  These
  *analytic* lanes produce the same :class:`RunResult` and
  :class:`~repro.obs.records.RunRecord` payloads as scalar execution
  without touching the kernel.  The soundness argument is strictly
  data-driven — every analytic lane's kernel-visible data is bitwise
  equal to the clean run's up to the classification point, so control
  flow (and hence the read trace) cannot diverge either; see
  docs/MODELING.md.

* **Equivalence-class pruning** consumes the golden read/write
  timeline (:class:`repro.obs.trace.GoldenTimeline`): faults in
  objects that are provably dead (on no read path at all) and faults
  in writable objects whose stuck bits agree with the object's
  content at every golden-run read — overwritten-before-next-read
  windows included — are tallied analytically as MASKED without
  simulating.  Prune tallies surface as
  ``campaign.batch.pruned.{dead,agrees,unread}`` counters.

* Remaining **exec lanes** — any lane with visible divergence in an
  unprotected object, or a writable-object fault the snapshots cannot
  clear — run through the application's
  ``execute_batch``, which vectorized kernels implement as stacked
  ``(N, ...)`` NumPy sweeps (scalar fallback otherwise), and are
  classified exactly like :meth:`Campaign._classify`.

The engine requires ``clone_mode="cow"`` and no SECDED filtering; the
campaign falls back to the scalar loop otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.address_space import BLOCK_BYTES, DataObject
from repro.core.schemes import make_scheme
from repro.errors import FaultDetected, KernelCrash
from repro.faults.injector import apply_faults_merged, merge_fault_masks
from repro.faults.model import FaultSpec, sample_word_fault
from repro.faults.outcomes import Outcome, RunResult
from repro.obs.records import RunRecord
from repro.obs.trace import GoldenTimeline
from repro.utils import fastseed
from repro.utils.rng import RngStream, derive_seed


@dataclass
class _Lane:
    """One planned run of a batch: its seed and sampled faults."""

    run_index: int
    seed: int
    faults: list[FaultSpec]


class _FastStream(RngStream):
    """An :class:`RngStream` facade over one reused, re-seeded PCG64.

    ``attach`` injects the generator state for the next lane instead of
    constructing a fresh ``Generator`` (which costs more than the draws
    it serves); lanes draw strictly sequentially, never concurrently.
    The weighted without-replacement draw goes through the
    :func:`~repro.utils.fastseed.weighted_choice` emulation — every
    other draw runs the real numpy ``Generator`` methods unchanged.
    """

    def __init__(self):
        self.seed = 0
        self._rng = np.random.Generator(np.random.PCG64(0))
        self._child_pool: list[RngStream] = []

    def attach(self, seed: int, words) -> None:
        self.seed = seed
        fastseed.reseed(self._rng.bit_generator, *words)

    def prepared_weighted_indices(self, p: np.ndarray, k: int) -> list[int]:
        return fastseed.weighted_choice(self._rng, p, k)


class BatchEngine:
    """Per-campaign batched planner + classifier (lazily prepared)."""

    def __init__(self, campaign):
        self.campaign = campaign
        self._prepared = False
        #: Whether the vectorized seed/generator emulation is trusted
        #: in this process (one-time self check + per-batch cross-check).
        self._fast = fastseed.self_check()
        self._parent = _FastStream()
        self._child = _FastStream()
        #: Fault-block address -> owning object (shared layout).
        self._block_objects: dict[int, DataObject] = {}
        #: Byte address -> fault-free byte value in the base image.
        self._base_bytes: dict[int, int] = {}

    # ------------------------------------------------------------------
    # One-time preparation: the fault-free reference execution
    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        if self._prepared:
            return
        self._prepared = True
        c = self.campaign
        memory = c._run_memory()
        self._base_memory = c._base_memory
        protected = [memory.object(n) for n in c.protected_names]
        scheme = make_scheme(c.scheme_name, memory, protected)
        self._protected = scheme.protected_names
        self._kind = scheme.scheme_name
        # Record every data consumption path via the golden timeline:
        # scheme reads (protected or not) AND direct
        # ``memory.read_object`` calls from kernel code ("raw" — they
        # bypass the scheme entirely, so divergence they observe can
        # neither be detected nor corrected), plus write events and
        # read-time content snapshots of writable objects for the
        # outcome-equivalence pruning below.
        self._timeline, output = GoldenTimeline.capture(
            c.app, memory, scheme)
        reads = self._timeline.reads()
        self._reads = reads
        self._clean_counters = dict(vars(scheme.stats))
        self._zero_counters = {k: 0 for k in self._clean_counters}
        # Prefix read counts and first-read positions drive the
        # DETECTED stats reconstruction; per-object protected read
        # counts drive the CORRECTED vote tallies; first *unchecked*
        # (unprotected or raw) positions decide when divergent data
        # escapes the scheme.
        self._prot_prefix: list[int] = []
        self._unprot_prefix: list[int] = []
        self._first_prot_read: dict[str, int] = {}
        self._first_read: dict[str, int] = {}
        self._first_unchecked: dict[str, int] = {}
        self._prot_read_count: dict[str, int] = {}
        n_prot = n_unprot = 0
        for i, (name, kind) in enumerate(reads):
            if kind == "prot":
                n_prot += 1
                self._first_prot_read.setdefault(name, i)
                self._prot_read_count[name] = \
                    self._prot_read_count.get(name, 0) + 1
            else:
                if kind == "unprot":
                    n_unprot += 1
                self._first_unchecked.setdefault(name, i)
            self._first_read.setdefault(name, i)
            self._prot_prefix.append(n_prot)
            self._unprot_prefix.append(n_unprot)
        # The analytic shortcuts are sound only if the fault-free
        # reference behaves exactly like the golden run; anything else
        # (a nondeterministic app, a scheme that corrects spuriously)
        # routes every lane through real execution instead.
        metric = None
        clean_ok = (
            isinstance(output, np.ndarray)
            and output.shape == c._golden.shape
            and output.dtype == c._golden.dtype
            and output.tobytes() == c._golden.tobytes()
            and scheme.stats.corrected_reads == 0
        )
        if clean_ok:
            metric = c.app.error_metric.compare(c._golden, output)
            clean_ok = not metric.is_sdc
        self._analytic = clean_ok
        self._clean_metric = metric

    # ------------------------------------------------------------------
    # Lane planning (vectorized seeds, reused generators)
    # ------------------------------------------------------------------
    def _plan_reference(self, run_index: int) -> _Lane:
        """Plan one lane exactly as :meth:`Campaign.run_one` does."""
        c = self.campaign
        seed = derive_seed(c.config.seed, run_index)
        rng = RngStream(seed)
        block_addrs = c.selection.pick(rng, c.config.n_blocks)
        children = rng.child_pool(len(block_addrs))
        faults = [
            sample_word_fault(
                children[i], addr, c.config.n_bits,
                word_candidates=c._live_words_for(addr),
            )
            for i, addr in enumerate(block_addrs)
        ]
        return _Lane(run_index, seed, faults)

    def _plan_fast(self, start: int, stop: int) -> list[_Lane]:
        c = self.campaign
        indices = np.arange(start, stop, dtype=np.uint64)
        seeds = fastseed.derive_seeds(c.config.seed, indices)
        parent_words = fastseed.generator_state_words(seeds)
        picks: list[list[int]] = []
        for i in range(indices.shape[0]):
            self._parent.attach(
                int(seeds[i]), [int(w[i]) for w in parent_words]
            )
            picks.append(c.selection.pick(self._parent, c.config.n_blocks))
        n_children = len(picks[0])
        child_words = [
            fastseed.generator_state_words(
                fastseed.derive_child_seeds(seeds, j)
            )
            for j in range(n_children)
        ]
        lanes = []
        for i in range(indices.shape[0]):
            faults = []
            for j, addr in enumerate(picks[i]):
                self._child.attach(0, [int(w[i]) for w in child_words[j]])
                faults.append(sample_word_fault(
                    self._child, addr, c.config.n_bits,
                    word_candidates=c._live_words_for(addr),
                ))
            lanes.append(_Lane(int(indices[i]), int(seeds[i]), faults))
        return lanes

    def _plan(self, start: int, stop: int) -> list[_Lane]:
        if self._fast:
            lanes = self._plan_fast(start, stop)
            # Cross-check the first lane of every batch against the
            # reference derivation; any disagreement (a numpy internals
            # change the self check somehow missed) permanently demotes
            # this engine to reference planning.
            reference = self._plan_reference(start)
            if (lanes[0].seed, lanes[0].faults) == \
                    (reference.seed, reference.faults):
                return lanes
            self._fast = False
        return [self._plan_reference(i) for i in range(start, stop)]

    # ------------------------------------------------------------------
    # Per-lane divergence analysis
    # ------------------------------------------------------------------
    def _object_for_block(self, block_addr: int) -> DataObject:
        obj = self._block_objects.get(block_addr)
        if obj is None:
            obj = self.campaign._pristine.object_at(block_addr)
            self._block_objects[block_addr] = obj
        return obj

    def _base_byte(self, byte_addr: int) -> int:
        value = self._base_bytes.get(byte_addr)
        if value is None:
            value = self._base_memory.read_byte(byte_addr)
            self._base_bytes[byte_addr] = value
        return value

    def _analyze(
        self, lane: _Lane
    ) -> tuple[dict[str, list[int]], bool, list[str]]:
        """Visible divergence of one lane's merged overlays.

        Returns ``(divergent, must_exec, prunes)``: per read-only
        object, the sorted offsets whose faulted read differs from the
        clean byte; whether some writable-object overlay disagrees
        with the golden timeline's read-time snapshots (so the lane
        must execute for real); and the equivalence-class prune tags
        earned by writable faults proven invisible (``dead`` — the
        object is never read at all; ``agrees`` — the stuck bits match
        the object's content at every consumption point, overwritten
        windows included).
        """
        masks = merge_fault_masks(lane.faults)
        divergent: dict[str, list[int]] = {}
        writable: dict[str, dict[int, tuple[int, int]]] = {}
        for byte_addr in sorted(masks):
            or_mask, and_mask = masks[byte_addr]
            # Word faults never straddle the 128B block, so the byte's
            # block is its fault's block — the memoized lookup applies.
            obj = self._object_for_block(
                byte_addr - byte_addr % BLOCK_BYTES
            )
            offset = byte_addr - obj.base_addr
            if offset >= obj.nbytes:
                continue  # block padding: invisible to every read
            if not obj.read_only:
                writable.setdefault(obj.name, {})[offset] = \
                    (or_mask, and_mask)
                continue
            raw = self._base_byte(byte_addr)
            if ((raw | or_mask) & ~and_mask & 0xFF) != raw:
                divergent.setdefault(obj.name, []).append(offset)
        must_exec = False
        prunes: list[str] = []
        for name, byte_masks in writable.items():
            tag = self._writable_verdict(name, byte_masks)
            if tag is None:
                must_exec = True
            else:
                prunes.append(tag)
        return divergent, must_exec, prunes

    def _writable_verdict(
        self, name: str, byte_masks: dict[int, tuple[int, int]]
    ) -> str | None:
        """Prune tag for a writable object's faults, ``None`` to run.

        ``dead``: the object is on no read path at all (scheme-internal
        reads included), so its content can never influence execution.
        ``agrees``: the stuck bits are a no-op against the object's
        raw content at every golden-run read — by the clean-prefix
        induction (writes store raw values, overlays re-apply on read)
        the faulted execution is then bitwise identical to the clean
        one.  Any snapshot mismatch — or a read path the timeline
        could not snapshot — means only real execution can tell.
        """
        timeline = self._timeline
        if name not in timeline.ever_read:
            return "dead"
        snapshots = timeline.read_values.get(name)
        if not snapshots:
            return None  # read somewhere we could not snapshot
        for offset, (or_mask, and_mask) in byte_masks.items():
            for snap in snapshots:
                raw = snap[offset]
                if ((raw | or_mask) & ~and_mask & 0xFF) != raw:
                    return None
        return "agrees"

    # ------------------------------------------------------------------
    # Analytic classification
    # ------------------------------------------------------------------
    def _classify_analytic(self, lane: _Lane):
        """Classify without executing; ``None`` if the lane must run.

        Returns ``(RunResult, counters_dict, prune_tags)`` for lanes
        whose outcome is fully determined by the clean read trace and
        the golden timeline.
        """
        divergent, must_exec, prunes = self._analyze(lane)
        if must_exec:
            # A writable-object fault that disagrees with some read-
            # time snapshot bites data written *during* the run; only
            # real execution can tell its visibility.
            return None
        visible: dict[str, list[int]] = {}
        for name, offsets in divergent.items():
            if name in self._first_read:
                visible[name] = offsets
            elif name in self._timeline.ever_read:
                # Consumed only by scheme-internal reads — a path the
                # positional trace cannot reason about, so execute.
                return None
            else:
                # Provably on no read path at all: the divergence is
                # invisible, the lane is bitwise clean.
                prunes.append("unread")
        divergent = visible
        prot_read = {
            name: offsets for name, offsets in divergent.items()
            if name in self._protected and name in self._first_prot_read
        }
        # Positions where some divergent object's data first escapes
        # the scheme (read unprotected, or read raw past the scheme).
        unchecked = [
            self._first_unchecked[name] for name in divergent
            if name in self._first_unchecked
        ]
        if self._kind == "detection" and prot_read:
            i_star, det_name = min(
                (self._first_prot_read[name], name) for name in prot_read
            )
            if any(pos < i_star for pos in unchecked):
                return None
            exc = FaultDetected(
                det_name, prot_read[det_name][0] // BLOCK_BYTES
            )
            counters = dict(self._zero_counters)
            counters["protected_reads"] = self._prot_prefix[i_star]
            counters["comparisons"] = self._prot_prefix[i_star]
            counters["unprotected_reads"] = self._unprot_prefix[i_star]
            return (
                RunResult(lane.run_index, Outcome.DETECTED, 0.0, str(exc)),
                counters,
                prunes,
            )
        if unchecked:
            return None
        if prot_read:
            if self._kind != "correction":
                return None
            corrected_reads = sum(
                self._prot_read_count[name] for name in prot_read
            )
            corrected_bytes = sum(
                self._prot_read_count[name] * len(offsets)
                for name, offsets in prot_read.items()
            )
            counters = dict(self._clean_counters)
            counters["corrected_bytes"] = corrected_bytes
            counters["corrected_reads"] = corrected_reads
            return (
                RunResult(
                    lane.run_index, Outcome.CORRECTED,
                    self._clean_metric.error,
                    f"{corrected_bytes} byte(s) voted out",
                ),
                counters,
                prunes,
            )
        return (
            RunResult(
                lane.run_index, Outcome.MASKED, self._clean_metric.error
            ),
            dict(self._clean_counters),
            prunes,
        )

    # ------------------------------------------------------------------
    # Real execution for the undecidable lanes
    # ------------------------------------------------------------------
    def _run_exec(self, lanes: list[_Lane]) -> list[tuple]:
        c = self.campaign
        memories, schemes = [], []
        for lane in lanes:
            memory = c._run_memory()
            protected = [memory.object(n) for n in c.protected_names]
            scheme = make_scheme(c.scheme_name, memory, protected)
            apply_faults_merged(memory, merge_fault_masks(lane.faults))
            memories.append(memory)
            schemes.append(scheme)
        with np.errstate(all="ignore"):
            outputs = c.app.execute_batch(memories, schemes)
        results = []
        for lane, scheme, output in zip(lanes, schemes, outputs):
            if isinstance(output, FaultDetected):
                run = RunResult(
                    lane.run_index, Outcome.DETECTED, 0.0, str(output)
                )
            elif isinstance(output, KernelCrash):
                run = RunResult(
                    lane.run_index, Outcome.CRASH, 0.0, str(output)
                )
            else:
                metric = c.app.error_metric.compare(c._golden, output)
                if metric.is_sdc:
                    run = RunResult(
                        lane.run_index, Outcome.SDC, metric.error,
                        f"error {metric.error:.6g} > {metric.threshold:g}",
                    )
                elif getattr(scheme, "stats", None) is not None \
                        and scheme.stats.corrected_reads:
                    run = RunResult(
                        lane.run_index, Outcome.CORRECTED, metric.error,
                        f"{scheme.stats.corrected_bytes} byte(s) voted out",
                    )
                else:
                    run = RunResult(
                        lane.run_index, Outcome.MASKED, metric.error
                    )
            results.append(
                (run, dict(vars(scheme.stats))
                 if getattr(scheme, "stats", None) is not None else {})
            )
        return results

    # ------------------------------------------------------------------
    # Batch entry point
    # ------------------------------------------------------------------
    def run_batch(
        self, start: int, stop: int, metrics=None, record_sink=None
    ) -> list[RunResult]:
        """Execute runs ``start..stop`` as one batch.

        Emits the same per-run metrics and (with ``record_sink``) the
        same :class:`RunRecord` payloads as the scalar path, in run-
        index order.
        """
        self._prepare()
        lanes = self._plan(start, stop)
        decided: dict[int, tuple] = {}
        exec_lanes: list[_Lane] = []
        pruned: dict[str, int] = {}
        for lane in lanes:
            verdict = (
                self._classify_analytic(lane) if self._analytic else None
            )
            if verdict is None:
                exec_lanes.append(lane)
            else:
                run, counters, prunes = verdict
                decided[lane.run_index] = (run, counters)
                for tag in prunes:
                    pruned[tag] = pruned.get(tag, 0) + 1
        if exec_lanes:
            for run, counters in self._run_exec(exec_lanes):
                decided[run.run_index] = (run, counters)
        if metrics is not None:
            metrics.inc(
                "campaign.batch.analytic_lanes",
                len(lanes) - len(exec_lanes),
            )
            metrics.inc("campaign.batch.exec_lanes", len(exec_lanes))
            for tag in sorted(pruned):
                metrics.inc(f"campaign.batch.pruned.{tag}", pruned[tag])
        results = []
        for lane in lanes:
            run, counters = decided[lane.run_index]
            if metrics is not None:
                for fault in lane.faults:
                    obj = self._object_for_block(fault.block_addr)
                    metrics.inc(f"campaign.faults.object.{obj.name}")
                metrics.inc(f"campaign.outcome.{run.outcome.value}")
            if record_sink is not None:
                c = self.campaign
                record_sink.append(RunRecord(
                    run_index=lane.run_index,
                    seed=lane.seed,
                    app=c.app.name,
                    scheme=c.scheme_name,
                    selection=c.selection.name,
                    n_blocks=c.config.n_blocks,
                    n_bits=c.config.n_bits,
                    outcome=run.outcome.value,
                    error=float(run.error),
                    detail=run.detail,
                    faults=tuple(lane.faults),
                    counters=tuple(sorted(
                        (name, int(value))
                        for name, value in counters.items()
                    )),
                ))
            results.append(run)
        return results
