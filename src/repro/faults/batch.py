"""Batched fault propagation: plan and classify N runs in one pass.

The scalar campaign path (:meth:`~repro.faults.campaign.Campaign.run_one`)
pays the full pipeline — seed derivation, memory clone, scheme
construction, functional execution, output comparison — for every run,
even though the vast majority of injected fault clusters are either
invisible (the stuck bits agree with the data underneath) or fully
absorbed by the replication scheme before they reach the kernel.  This
module batches a span of run indices and splits the lanes analytically:

* **Planning** is vectorized: per-lane seeds come from
  :func:`repro.utils.fastseed.derive_seeds` (SeedSequence as uint32
  array sweeps) and the per-lane generators are re-seeded in place via
  PCG64 state injection instead of being constructed.  The draws
  themselves replicate :meth:`Campaign.run_one` call-for-call, so the
  sampled faults are bit-identical; a reference cross-check runs on the
  first lane of every batch and the whole plan falls back to the scalar
  RNG path if it (or the module's one-time self check) ever disagrees.

* **Classification** exploits the stuck-at overlay algebra: a lane
  whose merged overlays are a no-op against the underlying bytes
  executes bitwise-identically to the fault-free run (MASKED); a lane
  whose visible divergence lies entirely in protected objects resolves
  from the fault-free read trace alone (DETECTED at the first protected
  divergent read, or CORRECTED with the per-read vote counts).  These
  *analytic* lanes produce the same :class:`RunResult` and
  :class:`~repro.obs.records.RunRecord` payloads as scalar execution
  without touching the kernel.  The soundness argument is strictly
  data-driven — every analytic lane's kernel-visible data is bitwise
  equal to the clean run's up to the classification point, so control
  flow (and hence the read trace) cannot diverge either; see
  docs/MODELING.md.

* **Equivalence-class pruning** consumes the golden read/write
  timeline (:class:`repro.obs.trace.GoldenTimeline`): faults in
  objects that are provably dead (on no read path at all) and faults
  in writable objects whose stuck bits agree with the object's
  content at every golden-run read — overwritten-before-next-read
  windows included — are tallied analytically as MASKED without
  simulating.  Prune tallies surface as
  ``campaign.batch.pruned.{dead,agrees,unread}`` counters.

* Remaining **exec lanes** — any lane with visible divergence in an
  unprotected object, or a writable-object fault the snapshots cannot
  clear — run through the application's
  ``execute_batch``, which vectorized kernels implement as stacked
  ``(N, ...)`` NumPy sweeps (scalar fallback otherwise), and are
  classified exactly like :meth:`Campaign._classify`.

The fault-free evidence base (golden timeline, prefix read counts,
clean counters, layout caches) and the analytic classifier itself live
in :class:`repro.obs.provenance.GoldenEvidence`, shared with the
scalar path's provenance derivation — both strategies reason from the
same captured state, which is what makes telemetry *and* provenance
streams byte-identical across ``--batch`` settings.

The engine requires ``clone_mode="cow"`` and no SECDED filtering; the
campaign falls back to the scalar loop otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schemes import make_scheme
from repro.errors import FaultDetected, KernelCrash
from repro.faults.injector import apply_faults_merged, merge_fault_masks
from repro.faults.model import FaultSpec, sample_word_fault
from repro.faults.outcomes import Outcome, RunResult
from repro.obs.records import RunRecord
from repro.utils import fastseed
from repro.utils.rng import RngStream, derive_seed


@dataclass
class _Lane:
    """One planned run of a batch: its seed and sampled faults."""

    run_index: int
    seed: int
    faults: list[FaultSpec]


class _FastStream(RngStream):
    """An :class:`RngStream` facade over one reused, re-seeded PCG64.

    ``attach`` injects the generator state for the next lane instead of
    constructing a fresh ``Generator`` (which costs more than the draws
    it serves); lanes draw strictly sequentially, never concurrently.
    The weighted without-replacement draw goes through the
    :func:`~repro.utils.fastseed.weighted_choice` emulation — every
    other draw runs the real numpy ``Generator`` methods unchanged.
    """

    def __init__(self):
        self.seed = 0
        self._rng = np.random.Generator(np.random.PCG64(0))
        self._child_pool: list[RngStream] = []

    def attach(self, seed: int, words) -> None:
        self.seed = seed
        fastseed.reseed(self._rng.bit_generator, *words)

    def prepared_weighted_indices(self, p: np.ndarray, k: int) -> list[int]:
        return fastseed.weighted_choice(self._rng, p, k)


class BatchEngine:
    """Per-campaign batched planner + classifier (lazily prepared)."""

    def __init__(self, campaign):
        self.campaign = campaign
        #: Whether the vectorized seed/generator emulation is trusted
        #: in this process (one-time self check + per-batch cross-check).
        self._fast = fastseed.self_check()
        self._parent = _FastStream()
        self._child = _FastStream()

    # ------------------------------------------------------------------
    # One-time preparation: the fault-free reference execution
    # ------------------------------------------------------------------
    def _prepare(self):
        """The campaign's shared :class:`GoldenEvidence` base."""
        return self.campaign._golden_evidence()

    @property
    def _timeline(self):
        """The golden read/write timeline of the evidence base."""
        return self._prepare().timeline

    def _writable_verdict(self, name, byte_masks):
        """Equivalence-class verdict for a writable-object overlay
        (delegates to the shared evidence base)."""
        return self._prepare().writable_verdict(name, byte_masks)

    # ------------------------------------------------------------------
    # Lane planning (vectorized seeds, reused generators)
    # ------------------------------------------------------------------
    def _plan_reference(self, run_index: int) -> _Lane:
        """Plan one lane exactly as :meth:`Campaign.run_one` does."""
        c = self.campaign
        seed = derive_seed(c.config.seed, run_index)
        rng = RngStream(seed)
        block_addrs = c.selection.pick(rng, c.config.n_blocks)
        children = rng.child_pool(len(block_addrs))
        faults = [
            sample_word_fault(
                children[i], addr, c.config.n_bits,
                word_candidates=c._live_words_for(addr),
            )
            for i, addr in enumerate(block_addrs)
        ]
        return _Lane(run_index, seed, faults)

    def _plan_fast(self, start: int, stop: int) -> list[_Lane]:
        c = self.campaign
        indices = np.arange(start, stop, dtype=np.uint64)
        seeds = fastseed.derive_seeds(c.config.seed, indices)
        parent_words = fastseed.generator_state_words(seeds)
        picks: list[list[int]] = []
        for i in range(indices.shape[0]):
            self._parent.attach(
                int(seeds[i]), [int(w[i]) for w in parent_words]
            )
            picks.append(c.selection.pick(self._parent, c.config.n_blocks))
        n_children = len(picks[0])
        child_words = [
            fastseed.generator_state_words(
                fastseed.derive_child_seeds(seeds, j)
            )
            for j in range(n_children)
        ]
        lanes = []
        for i in range(indices.shape[0]):
            faults = []
            for j, addr in enumerate(picks[i]):
                self._child.attach(0, [int(w[i]) for w in child_words[j]])
                faults.append(sample_word_fault(
                    self._child, addr, c.config.n_bits,
                    word_candidates=c._live_words_for(addr),
                ))
            lanes.append(_Lane(int(indices[i]), int(seeds[i]), faults))
        return lanes

    def _plan(self, start: int, stop: int) -> list[_Lane]:
        if self._fast:
            lanes = self._plan_fast(start, stop)
            # Cross-check the first lane of every batch against the
            # reference derivation; any disagreement (a numpy internals
            # change the self check somehow missed) permanently demotes
            # this engine to reference planning.
            reference = self._plan_reference(start)
            if (lanes[0].seed, lanes[0].faults) == \
                    (reference.seed, reference.faults):
                return lanes
            self._fast = False
        return [self._plan_reference(i) for i in range(start, stop)]

    # ------------------------------------------------------------------
    # Real execution for the undecidable lanes
    # ------------------------------------------------------------------
    def _run_exec(self, lanes: list[_Lane]) -> list[tuple]:
        c = self.campaign
        memories, schemes = [], []
        for lane in lanes:
            memory = c._run_memory()
            protected = [memory.object(n) for n in c.protected_names]
            scheme = make_scheme(c.scheme_name, memory, protected)
            apply_faults_merged(memory, merge_fault_masks(lane.faults))
            memories.append(memory)
            schemes.append(scheme)
        with np.errstate(all="ignore"):
            outputs = c.app.execute_batch(memories, schemes)
        results = []
        for lane, scheme, output in zip(lanes, schemes, outputs):
            if isinstance(output, FaultDetected):
                run = RunResult(
                    lane.run_index, Outcome.DETECTED, 0.0, str(output)
                )
            elif isinstance(output, KernelCrash):
                run = RunResult(
                    lane.run_index, Outcome.CRASH, 0.0, str(output)
                )
            else:
                metric = c.app.error_metric.compare(c._golden, output)
                if metric.is_sdc:
                    run = RunResult(
                        lane.run_index, Outcome.SDC, metric.error,
                        f"error {metric.error:.6g} > {metric.threshold:g}",
                    )
                elif getattr(scheme, "stats", None) is not None \
                        and scheme.stats.corrected_reads:
                    run = RunResult(
                        lane.run_index, Outcome.CORRECTED, metric.error,
                        f"{scheme.stats.corrected_bytes} byte(s) voted out",
                    )
                else:
                    run = RunResult(
                        lane.run_index, Outcome.MASKED, metric.error
                    )
            results.append(
                (run, dict(vars(scheme.stats))
                 if getattr(scheme, "stats", None) is not None else {})
            )
        return results

    # ------------------------------------------------------------------
    # Batch entry point
    # ------------------------------------------------------------------
    def run_batch(
        self, start: int, stop: int, metrics=None, record_sink=None,
        provenance_sink=None,
    ) -> list[RunResult]:
        """Execute runs ``start..stop`` as one batch.

        Emits the same per-run metrics and (with ``record_sink`` /
        ``provenance_sink``) the same :class:`RunRecord` and
        :class:`~repro.obs.provenance.ProvenanceRecord` payloads as
        the scalar path, in run-index order.
        """
        ev = self._prepare()
        lanes = self._plan(start, stop)
        decided: dict[int, tuple] = {}
        exec_lanes: list[_Lane] = []
        analytic_idx: set[int] = set()
        pruned: dict[str, int] = {}
        for lane in lanes:
            verdict = (
                ev.classify_analytic(lane.run_index, lane.faults)
                if ev.analytic else None
            )
            if verdict is None:
                exec_lanes.append(lane)
            else:
                run, counters, prunes = verdict
                decided[lane.run_index] = (run, counters)
                analytic_idx.add(lane.run_index)
                for tag in prunes:
                    pruned[tag] = pruned.get(tag, 0) + 1
        if exec_lanes:
            for run, counters in self._run_exec(exec_lanes):
                decided[run.run_index] = (run, counters)
        if metrics is not None:
            metrics.inc(
                "campaign.batch.analytic_lanes",
                len(lanes) - len(exec_lanes),
            )
            metrics.inc("campaign.batch.exec_lanes", len(exec_lanes))
            for tag in sorted(pruned):
                metrics.inc(f"campaign.batch.pruned.{tag}", pruned[tag])
        results = []
        for lane in lanes:
            run, counters = decided[lane.run_index]
            if metrics is not None:
                for fault in lane.faults:
                    obj = ev.object_for_block(fault.block_addr)
                    metrics.inc(f"campaign.faults.object.{obj.name}")
                metrics.inc(f"campaign.outcome.{run.outcome.value}")
            if provenance_sink is not None:
                provenance_sink.append(ev.provenance(
                    lane.run_index, lane.seed, lane.faults, run,
                    evidence=(
                        "analytic" if lane.run_index in analytic_idx
                        else "executed"
                    ),
                ))
            if record_sink is not None:
                c = self.campaign
                record_sink.append(RunRecord(
                    run_index=lane.run_index,
                    seed=lane.seed,
                    app=c.app.name,
                    scheme=c.scheme_name,
                    selection=c.selection.name,
                    n_blocks=c.config.n_blocks,
                    n_bits=c.config.n_bits,
                    outcome=run.outcome.value,
                    error=float(run.error),
                    detail=run.detail,
                    faults=tuple(lane.faults),
                    counters=tuple(sorted(
                        (name, int(value))
                        for name, value in counters.items()
                    )),
                ))
            results.append(run)
        return results
