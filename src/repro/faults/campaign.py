"""Fault-injection campaign runner.

A campaign executes many independent fault-injected runs of one
application under one resilience configuration and tallies outcomes.
Each run is fully reproducible from (campaign seed, run index):

1. clone the pristine device memory (inputs are set up once),
2. instantiate the scheme (allocating and populating replicas),
3. select the target blocks per the campaign's policy,
4. inject the stuck-at multi-bit faults,
5. execute the application functionally through the scheme reader,
6. classify the outcome against the fault-free golden output.

Replication happens before injection, matching the paper's flow where
copies are stored in DRAM at application load time and faults arrive
in the *primary* application address space (see DESIGN.md; the
replica-fault ablation bench exercises the other case).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro._compat import UNSET, resolve_renamed
from repro.arch.address_space import DeviceMemory
from repro.core.protection import ProtectionSpec
from repro.core.schemes import SCHEME_NAMES, make_protection
from repro.errors import (
    ConfigError,
    FaultDetected,
    KernelCrash,
    SpecError,
    UnknownSchemeError,
)
from repro.faults.batch import BatchEngine
from repro.faults.injector import apply_faults
from repro.faults.secded_filter import apply_filtered_faults
from repro.faults.model import FaultSpec, live_words, sample_word_fault
from repro.faults.outcomes import Outcome, RunResult
from repro.faults.selection import BlockSelection
from repro.kernels.base import GpuApplication
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import GoldenEvidence, ProvenanceRecord
from repro.obs.records import RunRecord
from repro.utils.canonical import canonical_digest
from repro.utils.rng import RngStream, derive_seed
from repro.utils.stats import (
    ConfidenceInterval,
    confidence_interval,
    zero_run_interval,
)

#: Per-run memory strategies: ``"cow"`` clones the prepared (replica-
#: populated) image copy-on-write; ``"full"`` deep-copies the pristine
#: memory and rebuilds replicas every run (the original, slow path —
#: kept as the reference the COW path is tested bit-for-bit against).
CLONE_MODES = ("cow", "full")

#: Bumped whenever the serialized campaign-result shape changes
#: incompatibly (checkpoint chunks embed it).  v2 added the
#: ``provenance`` record list.
RESULT_VERSION = 2


def merge_sorted_runs(parts: Iterable[list]) -> list:
    """Merge per-chunk run lists into one list ordered by run index.

    Each part must already be internally ordered (chunks execute their
    spans in index order); the merge is then linear and stable.  Works
    on anything carrying a ``run_index`` — both
    :class:`~repro.faults.outcomes.RunResult` and
    :class:`~repro.obs.records.RunRecord` streams go through here.
    """
    merged = list(heapq.merge(*parts, key=lambda run: run.run_index))
    for before, after in zip(merged, merged[1:]):
        if after.run_index <= before.run_index:
            raise ConfigError(
                f"duplicate run index {after.run_index} while merging "
                "campaign chunks"
            )
    return merged


@dataclass(frozen=True)
class CampaignConfig:
    """Fault-injection parameters of one campaign.

    The paper's grid is ``n_blocks`` in {1, 5} x ``n_bits`` in
    {2, 3, 4} with ``runs = 1000``.
    """

    runs: int = 1000
    n_blocks: int = 1
    n_bits: int = 2
    seed: int = 20210621  # DSN 2021 opening day
    #: Model the SECDED baseline explicitly: every fault cluster is
    #: filtered through a real (72,64) decode before it reaches the
    #: application (single-bit faults vanish, uncorrectable patterns
    #: end the run loudly, aliasing patterns deliver miscorrected
    #: data).  Off by default — the paper's multi-bit experiments
    #: assume the injected faults already escaped SECDED.
    secded: bool = False

    def __post_init__(self) -> None:
        if self.runs <= 0:
            raise ConfigError("runs must be positive")
        if self.n_blocks <= 0:
            raise ConfigError("n_blocks must be positive")
        if not 1 <= self.n_bits <= 32:
            raise ConfigError("n_bits must be in [1, 32]")

    def to_dict(self) -> dict:
        """JSON-ready image (canonical field order comes from the
        encoder's key sorting, not from this dict)."""
        return {
            "runs": self.runs,
            "n_blocks": self.n_blocks,
            "n_bits": self.n_bits,
            "seed": self.seed,
            "secded": self.secded,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        """Rebuild a config from a :meth:`to_dict` image."""
        if not isinstance(data, dict):
            raise SpecError(f"campaign config must be an object, "
                            f"got {type(data).__name__}")
        extra = set(data) - {"runs", "n_blocks", "n_bits", "seed", "secded"}
        if extra:
            raise SpecError(f"campaign config has unknown keys {sorted(extra)}")
        try:
            return cls(
                runs=int(data["runs"]),
                n_blocks=int(data["n_blocks"]),
                n_bits=int(data["n_bits"]),
                seed=int(data["seed"]),
                secded=bool(data["secded"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecError(f"bad campaign config: {exc}") from None


@dataclass
class CampaignResult:
    """Aggregated outcomes of a campaign.

    Invariant: ``runs`` (populated when ``keep_runs=True``) is ordered
    by strictly increasing ``run_index`` — chunked parallel execution
    reassembles it through :func:`merge_sorted_runs`, so the output is
    order-stable no matter how workers interleave.
    """

    app_name: str
    scheme_name: str
    selection_name: str
    config: CampaignConfig
    counts: dict[Outcome, int] = field(
        default_factory=lambda: {o: 0 for o in Outcome}
    )
    runs: list[RunResult] = field(default_factory=list)
    #: Per-run telemetry (populated with ``collect_records=True``),
    #: ordered by strictly increasing run index like ``runs``.
    records: list[RunRecord] = field(default_factory=list)
    #: Per-run fault provenance (populated with
    #: ``collect_provenance=True``), same ordering contract.
    provenance: list[ProvenanceRecord] = field(default_factory=list)
    #: Picklable :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of
    #: the metrics gathered while producing this (chunk) result.  Not
    #: part of result equality — wall-clock data is observability only.
    metrics_snapshot: dict | None = field(default=None, compare=False)

    @property
    def n_runs(self) -> int:
        return sum(self.counts.values())

    def validate(self) -> None:
        """Check the result's internal invariants.

        ``runs`` and ``records`` must be strictly ordered by run index
        and, when kept, must agree in size with the outcome tallies.
        """
        for kind, items in (("runs", self.runs), ("records", self.records),
                            ("provenance", self.provenance)):
            for before, after in zip(items, items[1:]):
                if after.run_index <= before.run_index:
                    raise ConfigError(
                        f"{self.app_name}: {kind} out of order "
                        f"({before.run_index} then {after.run_index})"
                    )
            if items and len(items) != self.n_runs:
                raise ConfigError(
                    f"{self.app_name}: {len(items)} kept {kind} but "
                    f"{self.n_runs} counted outcomes"
                )

    def _identity(self) -> tuple:
        return (self.app_name, self.scheme_name, self.selection_name,
                self.config)

    @classmethod
    def merge(cls, parts: Iterable["CampaignResult"]) -> "CampaignResult":
        """Combine chunk results into one campaign result.

        Counts add up; kept runs and telemetry records are merged back
        into run-index order; metrics snapshots fold together
        additively.  All parts must come from the same campaign
        configuration.
        """
        parts = list(parts)
        if not parts:
            raise ConfigError("cannot merge zero campaign results")
        identity = parts[0]._identity()
        for part in parts[1:]:
            if part._identity() != identity:
                raise ConfigError(
                    "cannot merge results from different campaigns: "
                    f"{identity} vs {part._identity()}"
                )
        merged = cls(
            app_name=parts[0].app_name,
            scheme_name=parts[0].scheme_name,
            selection_name=parts[0].selection_name,
            config=parts[0].config,
        )
        for outcome in Outcome:
            merged.counts[outcome] = sum(
                part.counts[outcome] for part in parts
            )
        merged.runs = merge_sorted_runs(part.runs for part in parts)
        merged.records = merge_sorted_runs(
            part.records for part in parts
        )
        merged.provenance = merge_sorted_runs(
            part.provenance for part in parts
        )
        if any(part.metrics_snapshot for part in parts):
            registry = MetricsRegistry()
            for part in parts:
                registry.merge_snapshot(part.metrics_snapshot)
            merged.metrics_snapshot = registry.snapshot()
        merged.validate()
        return merged

    def to_dict(self) -> dict:
        """JSON-ready image of this (chunk or merged) result.

        Everything deterministic goes in — counts, kept runs, telemetry
        records — and nothing wall-clock does: ``metrics_snapshot`` is
        observability only, so two results of the same campaign encode
        to byte-identical canonical JSON no matter where or how fast
        they ran.  Floats are cast to Python ``float`` so the encoding
        round-trips exactly.
        """
        return {
            "version": RESULT_VERSION,
            "app": self.app_name,
            "scheme": self.scheme_name,
            "selection": self.selection_name,
            "config": self.config.to_dict(),
            "counts": {o.value: self.counts[o] for o in Outcome},
            "runs": [
                {
                    "run_index": r.run_index,
                    "outcome": r.outcome.value,
                    "error": float(r.error),
                    "detail": r.detail,
                }
                for r in self.runs
            ],
            "records": [record.to_dict() for record in self.records],
            "provenance": [
                record.to_dict() for record in self.provenance
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        """Rebuild a result from a :meth:`to_dict` image, validating.

        Raises :class:`~repro.errors.SpecError` (or
        :class:`~repro.errors.TelemetryError` for a bad embedded run
        record) on any malformed payload; the checkpoint store wraps
        either into :class:`~repro.errors.CheckpointError`.
        """
        if not isinstance(data, dict):
            raise SpecError("campaign result must be an object")
        if data.get("version") != RESULT_VERSION:
            raise SpecError(
                f"unsupported campaign result version "
                f"{data.get('version')!r} (expected {RESULT_VERSION})"
            )
        for key, typ in (("app", str), ("scheme", str), ("selection", str),
                         ("counts", dict), ("runs", list),
                         ("records", list), ("provenance", list)):
            if not isinstance(data.get(key), typ):
                raise SpecError(f"campaign result key {key!r} bad/missing")
        if set(data["counts"]) != {o.value for o in Outcome}:
            raise SpecError(
                f"campaign result counts keys {sorted(data['counts'])} "
                "do not match the outcome taxonomy"
            )
        result = cls(
            app_name=data["app"],
            scheme_name=data["scheme"],
            selection_name=data["selection"],
            config=CampaignConfig.from_dict(data.get("config")),
        )
        for outcome in Outcome:
            n = data["counts"][outcome.value]
            if not isinstance(n, int) or isinstance(n, bool) or n < 0:
                raise SpecError(f"bad count for outcome {outcome.value!r}")
            result.counts[outcome] = n
        try:
            result.runs = [
                RunResult(
                    run_index=int(r["run_index"]),
                    outcome=Outcome(r["outcome"]),
                    error=float(r["error"]),
                    detail=str(r["detail"]),
                )
                for r in data["runs"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecError(f"bad kept run in campaign result: {exc}") \
                from None
        result.records = [
            RunRecord.from_dict(record) for record in data["records"]
        ]
        result.provenance = [
            ProvenanceRecord.from_dict(record)
            for record in data["provenance"]
        ]
        result.validate()
        return result

    @property
    def sdc_count(self) -> int:
        return self.counts[Outcome.SDC]

    @property
    def sdc_rate(self) -> float:
        return self.sdc_count / self.n_runs if self.n_runs else 0.0

    def sdc_interval(self, level: float = 0.95) -> ConfidenceInterval:
        """Confidence interval on the SDC rate.

        An empty result (zero runs — e.g. rebuilt from a truncated
        telemetry stream) yields the vacuous [0, 1] interval rather
        than raising.
        """
        if self.n_runs == 0:
            return zero_run_interval(level)
        return confidence_interval(self.sdc_count, self.n_runs, level)

    def count(self, outcome: Outcome) -> int:
        """Number of runs ending with the given outcome."""
        return self.counts[outcome]

    def summary(self) -> str:
        """Human-readable multi-line result summary."""
        parts = [
            f"{self.app_name} [{self.scheme_name}, {self.selection_name}, "
            f"{self.config.n_blocks} block(s) x {self.config.n_bits}-bit, "
            f"{self.n_runs} runs]"
        ]
        for outcome in Outcome:
            n = self.counts[outcome]
            if n:
                parts.append(f"  {outcome.value}: {n}")
        parts.append(f"  SDC rate: {self.sdc_interval()}")
        return "\n".join(parts)


class Campaign:
    """Runs fault-injection experiments for one configuration.

    ``jobs`` fans the runs out over that many worker processes (see
    :class:`~repro.runtime.executor.CampaignExecutor`); the outcome is
    bit-identical to a serial execution because each run derives
    entirely from ``(seed, run_index)``.  ``clone_mode`` picks the
    per-run memory strategy (see :data:`CLONE_MODES`): the default
    ``"cow"`` clones a once-prepared, replica-populated image
    copy-on-write, so a run materializes private copies only of the
    objects it actually writes.

    ``collect_records=True`` makes every run emit a deterministic
    :class:`~repro.obs.records.RunRecord` into the result; ``metrics``
    names the :class:`~repro.obs.metrics.MetricsRegistry` that
    wall-clock observability (per-outcome run latency, fault
    placement, executor utilization) accumulates into — one is created
    if not supplied.
    """

    def __init__(
        self,
        app: GpuApplication,
        selection: BlockSelection,
        scheme: str = UNSET,
        protect: tuple[str, ...] = UNSET,
        config: CampaignConfig | None = None,
        keep_runs: bool = False,
        jobs: int = 1,
        clone_mode: str = "cow",
        collect_records: bool = False,
        collect_provenance: bool = False,
        metrics: MetricsRegistry | None = None,
        batch: int = 1,
        max_batch_bytes: int = 256 * 1024 * 1024,
        target_margin: float | None = None,
        adaptive=None,
        progress=None,
        scheme_name: str = UNSET,
        protected_names: tuple[str, ...] = UNSET,
        protection: ProtectionSpec | None = None,
    ):
        # Canonical vocabulary is ``scheme``/``protect``; the original
        # ``scheme_name``/``protected_names`` spellings still work but
        # warn once per process.
        scheme = resolve_renamed(
            "Campaign", "scheme_name", "scheme", scheme_name, scheme)
        protect = resolve_renamed(
            "Campaign", "protected_names", "protect",
            protected_names, protect)
        if protection is not None:
            # The typed spelling: a ProtectionSpec carries both the
            # scheme and the object list (mixed per-object schemes
            # included), so the string kwargs must stay unset.
            if scheme is not UNSET or protect is not UNSET:
                raise ConfigError(
                    "pass either protection= or scheme=/protect=, "
                    "not both"
                )
            scheme = protection.scheme_label
            protect = protection.objects
        if scheme is UNSET:
            scheme = "baseline"
        if protect is UNSET:
            protect = ()
        if protection is None:
            if scheme not in SCHEME_NAMES:
                raise UnknownSchemeError(scheme, SCHEME_NAMES)
            protection = ProtectionSpec.uniform(scheme, protect)
        if protection.is_mixed and collect_provenance:
            raise ConfigError(
                "provenance collection does not support mixed "
                "per-object schemes yet (the cause taxonomy is "
                "defined per uniform scheme)"
            )
        if clone_mode not in CLONE_MODES:
            raise ConfigError(
                f"clone_mode {clone_mode!r} not in {CLONE_MODES}"
            )
        if jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if batch < 1:
            raise ConfigError("batch must be >= 1")
        if max_batch_bytes < 1:
            raise ConfigError("max_batch_bytes must be >= 1")
        self.app = app
        self.selection = selection
        self.scheme_name = scheme
        self.protected_names = tuple(protect)
        #: Typed image of the configuration (always set; uniform
        #: string spellings are wrapped on construction).
        self.protection = protection
        self.config = config or CampaignConfig()
        self.keep_runs = keep_runs
        self.jobs = jobs
        self.clone_mode = clone_mode
        self.collect_records = collect_records
        #: Emit one :class:`~repro.obs.provenance.ProvenanceRecord` per
        #: run into the result.  Off by default: the derivation walks
        #: the golden read timeline per run, a cost the plain
        #: telemetry path must not pay.
        self.collect_provenance = collect_provenance
        #: Runs propagated per batched sweep (1 = scalar ``run_one``
        #: loop).  Like ``jobs``/``clone_mode`` this is an execution
        #: knob, provably result-invariant, and stays out of
        #: :meth:`spec_identity`; ``max_batch_bytes`` clamps the
        #: effective size so large apps cannot OOM.
        self.batch = batch
        self.max_batch_bytes = max_batch_bytes
        #: Early-stopping rule (an
        #: :class:`~repro.faults.adaptive.AdaptiveConfig`), built from
        #: the ``target_margin`` shorthand when only that is given.
        #: Unlike ``jobs``/``batch`` this *does* change the committed
        #: result (how many runs it holds), so it joins
        #: :meth:`spec_identity` — but only when enabled, keeping
        #: every exhaustive campaign's digest unchanged.
        if target_margin is not None and adaptive is not None:
            raise ConfigError(
                "pass either target_margin or adaptive, not both"
            )
        if target_margin is not None:
            from repro.faults.adaptive import AdaptiveConfig

            adaptive = AdaptiveConfig(target_margin=float(target_margin))
        self.adaptive = adaptive
        #: Live-progress sink: a callable taking one
        #: :class:`~repro.obs.progress.ProgressEvent`, invoked at chunk
        #: granularity by the drivers.  Observational only — never part
        #: of :meth:`spec_identity`, never shipped to workers, and when
        #: ``None`` (the default) every driver takes its pre-progress
        #: code path unchanged.
        self.progress = progress
        #: The full AdaptiveResult of the last adaptive run (decision
        #: trail, convergence flag); None until one completes.
        self.adaptive_result = None
        self._batch_engine: BatchEngine | None = None
        #: Lazily captured fault-free evidence base shared by the
        #: batch classifier and the provenance derivation.
        self._evidence: GoldenEvidence | None = None
        #: Observability sink for this campaign (and, when run through
        #: the executor, for the executor's own chunk/utilization
        #: metrics).  Never feeds back into results.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        from repro.runtime.cache import app_context

        context = app_context(app)
        self._pristine = context.pristine
        self._golden = context.golden
        #: Prepared per-campaign image: pristine memory plus the
        #: scheme's replicas, built once and COW-cloned per run.
        self._base_memory: DeviceMemory | None = None
        #: live-word candidates per block address; the object layout is
        #: identical in every clone, so repeats across runs reuse it.
        self._live_words: dict[int, list[int]] = {}

    @property
    def scheme(self) -> str:
        """Canonical alias of ``scheme_name``."""
        return self.scheme_name

    @property
    def protect(self) -> tuple[str, ...]:
        """Canonical alias of ``protected_names``."""
        return self.protected_names

    def spec_identity(self) -> dict:
        """Canonical structural identity of this campaign.

        Everything that determines the deterministic payload of the
        campaign's results: the application's structural cache key,
        the selection policy, scheme, protected objects, fault config
        and the result-shape flags.  Execution knobs that provably do
        not change results (``jobs``, ``clone_mode``) stay out, so a
        checkpoint taken at one parallelism resumes at any other.
        """
        from repro.runtime.cache import app_cache_key

        module, qualname, scalars = app_cache_key(self.app)
        identity = {
            "app": {
                "class": f"{module}.{qualname}",
                "params": [[name, value] for name, value in scalars],
            },
            "selection": self.selection.name,
            "scheme": self.scheme_name,
            "protect": list(self.protected_names),
            "config": self.config.to_dict(),
            "keep_runs": self.keep_runs,
            "collect_records": self.collect_records,
        }
        if self.collect_provenance:
            # Conditional like "adaptive" below, so every digest taken
            # before provenance existed stays valid.
            identity["collect_provenance"] = True
        if self.adaptive is not None:
            identity["adaptive"] = self.adaptive.to_dict()
        if self.protection.is_mixed:
            # Mixed configurations carry the full per-object scheme
            # map; uniform ones are fully described by scheme/protect
            # above, so their digests predate this key and must not
            # change.
            identity["protection"] = self.protection.to_dict()
        return identity

    def identity_digest(self) -> str:
        """Content address of :meth:`spec_identity` (checkpoint key)."""
        return canonical_digest(self.spec_identity())

    def run(self, jobs: int | None = None) -> CampaignResult:
        """Execute every run and aggregate the outcomes.

        ``jobs`` overrides the campaign's parallelism for this call.
        With an ``adaptive`` config (or ``target_margin``) set, runs
        commit in chunks and the campaign stops at the first chunk
        boundary whose Wilson CI meets the target margin; the full
        decision trail lands in :attr:`adaptive_result`.
        """
        if self.adaptive is not None:
            return self.run_adaptive(jobs=jobs).result
        n_jobs = self.jobs if jobs is None else jobs
        if n_jobs != 1 or self.progress is not None:
            # The executor owns chunking, and with it the chunk
            # boundaries progress events are emitted at.
            from repro.runtime.executor import CampaignExecutor

            return CampaignExecutor(self, jobs=n_jobs).run()
        result = self.run_span(0, self.config.runs)
        self.metrics.merge_snapshot(result.metrics_snapshot)
        return result

    def run_adaptive(self, jobs: int | None = None, config=None):
        """Execute under the CI-driven early-stopping rule.

        Returns the :class:`~repro.faults.adaptive.AdaptiveResult`
        (committed result + stop-decision trail), also stored in
        :attr:`adaptive_result`.  ``config`` overrides the campaign's
        own ``adaptive`` config for this call.
        """
        from repro.faults.adaptive import run_adaptive

        cfg = config if config is not None else self.adaptive
        if cfg is None:
            raise ConfigError(
                "run_adaptive needs an AdaptiveConfig — construct the "
                "campaign with target_margin/adaptive or pass config="
            )
        self.adaptive_result = run_adaptive(self, cfg, jobs=jobs)
        return self.adaptive_result

    def run_span(self, start: int, stop: int) -> CampaignResult:
        """Execute runs ``start..stop`` serially (one parallel chunk).

        Metrics accumulate into a span-local registry whose snapshot is
        attached to the chunk result — worker processes ship it home
        that way, and serial callers fold it into ``self.metrics``.
        """
        result = CampaignResult(
            app_name=self.app.name,
            scheme_name=self.scheme_name,
            selection_name=self.selection.name,
            config=self.config,
        )
        span_metrics = MetricsRegistry()
        record_sink = result.records if self.collect_records else None
        provenance_sink = (
            result.provenance if self.collect_provenance else None
        )
        span_begin = time.perf_counter()
        step = self.effective_batch
        if step > 1:
            index = start
            while index < stop:
                batch_stop = min(index + step, stop)
                batch_begin = time.perf_counter()
                batch_runs = self.run_batch(
                    index, batch_stop,
                    metrics=span_metrics, record_sink=record_sink,
                    provenance_sink=provenance_sink,
                )
                elapsed_ms = (time.perf_counter() - batch_begin) * 1e3
                span_metrics.observe("campaign.batch_ms", elapsed_ms)
                per_run_ms = elapsed_ms / len(batch_runs)
                for run_result in batch_runs:
                    span_metrics.observe(
                        f"campaign.run_ms.{run_result.outcome.value}",
                        per_run_ms,
                    )
                    result.counts[run_result.outcome] += 1
                    if self.keep_runs:
                        result.runs.append(run_result)
                index = batch_stop
        else:
            for run_index in range(start, stop):
                run_begin = time.perf_counter()
                run_result = self.run_one(
                    run_index, metrics=span_metrics,
                    record_sink=record_sink,
                    provenance_sink=provenance_sink,
                )
                span_metrics.observe(
                    f"campaign.run_ms.{run_result.outcome.value}",
                    (time.perf_counter() - run_begin) * 1e3,
                )
                result.counts[run_result.outcome] += 1
                if self.keep_runs:
                    result.runs.append(run_result)
        span_metrics.observe(
            "campaign.span_ms", (time.perf_counter() - span_begin) * 1e3
        )
        result.metrics_snapshot = span_metrics.snapshot()
        return result

    @property
    def effective_batch(self) -> int:
        """The batch size actually used by :meth:`run_span`.

        The requested ``batch`` is clamped so a batch's worst-case
        footprint (every lane COW-cloning the full base image) stays
        under ``max_batch_bytes``, and collapses to 1 whenever the
        batched engine cannot guarantee scalar-identical results
        (SECDED filtering, ``clone_mode="full"``, mixed per-object
        schemes — the lane classifier models one uniform scheme).
        """
        if self.batch <= 1 or self.config.secded \
                or self.clone_mode != "cow" \
                or self.protection.is_mixed:
            return 1
        per_lane = max(1, self._pristine.bytes_allocated)
        return max(1, min(self.batch, self.max_batch_bytes // per_lane))

    def run_batch(
        self,
        start: int,
        stop: int,
        metrics: MetricsRegistry | None = None,
        record_sink: list[RunRecord] | None = None,
        provenance_sink: list[ProvenanceRecord] | None = None,
    ) -> list[RunResult]:
        """Execute runs ``start..stop`` as one batched sweep.

        Results, metrics and (with ``record_sink`` /
        ``provenance_sink``) RunRecords and ProvenanceRecords are
        identical to calling :meth:`run_one` per index — the batched
        engine (see :mod:`repro.faults.batch`) is an execution
        strategy, not a semantic variant.  Configurations the engine
        does not support (SECDED, full clone mode, mixed per-object
        schemes) transparently fall back to the scalar loop.
        """
        if self.config.secded or self.clone_mode != "cow" \
                or self.protection.is_mixed:
            return [
                self.run_one(i, metrics=metrics, record_sink=record_sink,
                             provenance_sink=provenance_sink)
                for i in range(start, stop)
            ]
        if self._batch_engine is None:
            self._batch_engine = BatchEngine(self)
        return self._batch_engine.run_batch(
            start, stop, metrics=metrics, record_sink=record_sink,
            provenance_sink=provenance_sink,
        )

    def _golden_evidence(self) -> GoldenEvidence:
        """The campaign's shared fault-free evidence base.

        Captured on first use (one golden execution per process) and
        reused by both the batched classifier and the scalar path's
        provenance derivation — a single source of truth is what keeps
        their record streams byte-identical.
        """
        if self._evidence is None:
            self._evidence = GoldenEvidence(self)
        return self._evidence

    def _run_memory(self) -> DeviceMemory:
        """Per-run device memory according to ``clone_mode``."""
        if self.clone_mode == "full":
            # Reference path: deep-copy the pristine memory; replicas
            # are recreated from scratch inside every run.
            return self._pristine.clone()
        if self._base_memory is None:
            if self.protection.is_baseline:
                # No replicas to prepare: COW straight off the shared
                # pristine image.
                self._base_memory = self._pristine
            else:
                base = self._pristine.clone()
                make_protection(base, self.protection)
                self._base_memory = base
        return self._base_memory.cow_clone()

    def _live_words_for(self, addr: int) -> list[int]:
        candidates = self._live_words.get(addr)
        if candidates is None:
            candidates = live_words(self._pristine.object_at(addr), addr)
            self._live_words[addr] = candidates
        return candidates

    def run_one(
        self,
        run_index: int,
        metrics: MetricsRegistry | None = None,
        record_sink: list[RunRecord] | None = None,
        provenance_sink: list[ProvenanceRecord] | None = None,
    ) -> RunResult:
        """Execute one reproducible fault-injected run.

        ``metrics`` receives observability counters (fault placement by
        object, outcome tallies); ``record_sink`` receives the run's
        deterministic :class:`~repro.obs.records.RunRecord`;
        ``provenance_sink`` receives its
        :class:`~repro.obs.provenance.ProvenanceRecord`.  All are
        optional so ad-hoc single-run calls stay cheap.
        """
        seed = derive_seed(self.config.seed, run_index)
        rng = RngStream(seed)
        memory = self._run_memory()
        scheme = make_protection(memory, self.protection)

        block_addrs = self.selection.pick(rng, self.config.n_blocks)
        children = rng.child_pool(len(block_addrs))
        faults = [
            sample_word_fault(
                children[i],
                addr,
                self.config.n_bits,
                word_candidates=self._live_words_for(addr),
            )
            for i, addr in enumerate(block_addrs)
        ]
        verdict_sink = (
            [] if provenance_sink is not None and self.config.secded
            else None
        )
        result = self._classify(
            run_index, memory, scheme, faults, verdict_sink=verdict_sink
        )
        if provenance_sink is not None:
            provenance_sink.append(self._golden_evidence().provenance(
                run_index, seed, faults, result,
                secded_verdicts=verdict_sink,
            ))
        if metrics is not None:
            for fault in faults:
                obj = self._pristine.object_at(fault.block_addr)
                metrics.inc(f"campaign.faults.object.{obj.name}")
            metrics.inc(f"campaign.outcome.{result.outcome.value}")
        if record_sink is not None:
            record_sink.append(RunRecord(
                run_index=run_index,
                seed=seed,
                app=self.app.name,
                scheme=self.scheme_name,
                selection=self.selection.name,
                n_blocks=self.config.n_blocks,
                n_bits=self.config.n_bits,
                outcome=result.outcome.value,
                error=float(result.error),
                detail=result.detail,
                faults=tuple(faults),
                counters=self._scheme_counters(scheme),
            ))
        return result

    @staticmethod
    def _scheme_counters(scheme) -> tuple[tuple[str, int], ...]:
        """The scheme's post-run stats as sorted (name, value) pairs."""
        stats = getattr(scheme, "stats", None)
        if stats is None:
            return ()
        return tuple(sorted(
            (name, int(value)) for name, value in vars(stats).items()
        ))

    def _classify(
        self,
        run_index: int,
        memory: DeviceMemory,
        scheme,
        faults: list[FaultSpec],
        verdict_sink: list | None = None,
    ) -> RunResult:
        """Inject ``faults``, execute the app, classify the outcome.

        ``verdict_sink`` (SECDED campaigns only) receives the per-fault
        :class:`~repro.faults.secded_filter.EccVerdict` s of the
        filtering pass, which the provenance derivation attributes
        causes from.
        """
        if self.config.secded:
            verdicts, due = apply_filtered_faults(memory, faults)
            if verdict_sink is not None:
                verdict_sink.extend(verdicts)
            if due:
                return RunResult(
                    run_index, Outcome.DETECTED, 0.0,
                    "SECDED detected-uncorrectable error (DUE)",
                )
        else:
            apply_faults(memory, faults)

        try:
            with np.errstate(all="ignore"):
                output = self.app.execute(memory, scheme)
        except FaultDetected as exc:
            return RunResult(run_index, Outcome.DETECTED, 0.0, str(exc))
        except KernelCrash as exc:
            return RunResult(run_index, Outcome.CRASH, 0.0, str(exc))

        metric = self.app.error_metric.compare(self._golden, output)
        if metric.is_sdc:
            return RunResult(
                run_index, Outcome.SDC, metric.error,
                f"error {metric.error:.6g} > {metric.threshold:g}",
            )
        if getattr(scheme, "stats", None) is not None \
                and scheme.stats.corrected_reads:
            return RunResult(
                run_index, Outcome.CORRECTED, metric.error,
                f"{scheme.stats.corrected_bytes} byte(s) voted out",
            )
        return RunResult(run_index, Outcome.MASKED, metric.error)
