"""Fault-injection campaign runner.

A campaign executes many independent fault-injected runs of one
application under one resilience configuration and tallies outcomes.
Each run is fully reproducible from (campaign seed, run index):

1. clone the pristine device memory (inputs are set up once),
2. instantiate the scheme (allocating and populating replicas),
3. select the target blocks per the campaign's policy,
4. inject the stuck-at multi-bit faults,
5. execute the application functionally through the scheme reader,
6. classify the outcome against the fault-free golden output.

Replication happens before injection, matching the paper's flow where
copies are stored in DRAM at application load time and faults arrive
in the *primary* application address space (see DESIGN.md; the
replica-fault ablation bench exercises the other case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.core.schemes import make_scheme
from repro.errors import ConfigError, FaultDetected, KernelCrash
from repro.faults.injector import apply_faults
from repro.faults.secded_filter import apply_filtered_faults
from repro.faults.model import FaultSpec, live_words, sample_word_fault
from repro.faults.outcomes import Outcome, RunResult
from repro.faults.selection import BlockSelection
from repro.kernels.base import GpuApplication
from repro.utils.rng import RngStream, derive_seed
from repro.utils.stats import ConfidenceInterval, confidence_interval


@dataclass(frozen=True)
class CampaignConfig:
    """Fault-injection parameters of one campaign.

    The paper's grid is ``n_blocks`` in {1, 5} x ``n_bits`` in
    {2, 3, 4} with ``runs = 1000``.
    """

    runs: int = 1000
    n_blocks: int = 1
    n_bits: int = 2
    seed: int = 20210621  # DSN 2021 opening day
    #: Model the SECDED baseline explicitly: every fault cluster is
    #: filtered through a real (72,64) decode before it reaches the
    #: application (single-bit faults vanish, uncorrectable patterns
    #: end the run loudly, aliasing patterns deliver miscorrected
    #: data).  Off by default — the paper's multi-bit experiments
    #: assume the injected faults already escaped SECDED.
    secded: bool = False

    def __post_init__(self) -> None:
        if self.runs <= 0:
            raise ConfigError("runs must be positive")
        if self.n_blocks <= 0:
            raise ConfigError("n_blocks must be positive")
        if not 1 <= self.n_bits <= 32:
            raise ConfigError("n_bits must be in [1, 32]")


@dataclass
class CampaignResult:
    """Aggregated outcomes of a campaign."""

    app_name: str
    scheme_name: str
    selection_name: str
    config: CampaignConfig
    counts: dict[Outcome, int] = field(
        default_factory=lambda: {o: 0 for o in Outcome}
    )
    runs: list[RunResult] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return sum(self.counts.values())

    @property
    def sdc_count(self) -> int:
        return self.counts[Outcome.SDC]

    @property
    def sdc_rate(self) -> float:
        return self.sdc_count / self.n_runs if self.n_runs else 0.0

    def sdc_interval(self, level: float = 0.95) -> ConfidenceInterval:
        """Confidence interval on the SDC rate."""
        return confidence_interval(self.sdc_count, self.n_runs, level)

    def count(self, outcome: Outcome) -> int:
        """Number of runs ending with the given outcome."""
        return self.counts[outcome]

    def summary(self) -> str:
        """Human-readable multi-line result summary."""
        parts = [
            f"{self.app_name} [{self.scheme_name}, {self.selection_name}, "
            f"{self.config.n_blocks} block(s) x {self.config.n_bits}-bit, "
            f"{self.n_runs} runs]"
        ]
        for outcome in Outcome:
            n = self.counts[outcome]
            if n:
                parts.append(f"  {outcome.value}: {n}")
        parts.append(f"  SDC rate: {self.sdc_interval()}")
        return "\n".join(parts)


class Campaign:
    """Runs fault-injection experiments for one configuration."""

    def __init__(
        self,
        app: GpuApplication,
        selection: BlockSelection,
        scheme_name: str = "baseline",
        protected_names: tuple[str, ...] = (),
        config: CampaignConfig | None = None,
        keep_runs: bool = False,
    ):
        self.app = app
        self.selection = selection
        self.scheme_name = scheme_name
        self.protected_names = tuple(protected_names)
        self.config = config or CampaignConfig()
        self.keep_runs = keep_runs
        self._pristine = app.fresh_memory()
        self._golden = app.golden_output()

    def run(self) -> CampaignResult:
        """Execute every run and aggregate the outcomes."""
        result = CampaignResult(
            app_name=self.app.name,
            scheme_name=self.scheme_name,
            selection_name=self.selection.name,
            config=self.config,
        )
        for run_index in range(self.config.runs):
            run_result = self.run_one(run_index)
            result.counts[run_result.outcome] += 1
            if self.keep_runs:
                result.runs.append(run_result)
        return result

    def run_one(self, run_index: int) -> RunResult:
        """Execute one reproducible fault-injected run."""
        rng = RngStream(derive_seed(self.config.seed, run_index))
        memory = self._pristine.clone()
        protected = [memory.object(n) for n in self.protected_names]
        scheme = make_scheme(self.scheme_name, memory, protected)

        block_addrs = self.selection.pick(rng, self.config.n_blocks)
        faults = [
            sample_word_fault(
                rng.child(i),
                addr,
                self.config.n_bits,
                word_candidates=live_words(memory.object_at(addr), addr),
            )
            for i, addr in enumerate(block_addrs)
        ]
        if self.config.secded:
            _verdicts, due = apply_filtered_faults(memory, faults)
            if due:
                return RunResult(
                    run_index, Outcome.DETECTED, 0.0,
                    "SECDED detected-uncorrectable error (DUE)",
                )
        else:
            apply_faults(memory, faults)

        try:
            with np.errstate(all="ignore"):
                output = self.app.execute(memory, scheme)
        except FaultDetected as exc:
            return RunResult(run_index, Outcome.DETECTED, 0.0, str(exc))
        except KernelCrash as exc:
            return RunResult(run_index, Outcome.CRASH, 0.0, str(exc))

        metric = self.app.error_metric.compare(self._golden, output)
        if metric.is_sdc:
            return RunResult(
                run_index, Outcome.SDC, metric.error,
                f"error {metric.error:.6g} > {metric.threshold:g}",
            )
        if getattr(scheme, "stats", None) is not None \
                and scheme.stats.corrected_reads:
            return RunResult(
                run_index, Outcome.CORRECTED, metric.error,
                f"{scheme.stats.corrected_bytes} byte(s) voted out",
            )
        return RunResult(run_index, Outcome.MASKED, metric.error)
