"""CI-driven early stopping for statistical fault-injection campaigns.

The paper sizes every campaign at a fixed 1000 runs to hit the
Leveugle ±3% margin.  This module makes the loop *adaptive*: runs
commit in fixed-size chunks, the Wilson confidence interval on the
SDC rate is evaluated after every committed chunk, and the campaign
stops at the first chunk boundary where the margin meets the target.

The stopping rule is deterministic by construction: decisions are
made only at chunk boundaries, in run-index order, over the committed
prefix — never over whatever happens to have finished first.  Workers
may speculate chunks beyond the eventual stop point (the wave-based
parallel driver does exactly that), but speculative results past the
stop boundary are discarded, so the committed result — tallies, kept
runs, telemetry records, provenance records, stop decisions — is
byte-identical at any ``--jobs``/``--batch``.

Because every run is derived solely from ``(campaign seed, run
index)``, an adaptive campaign's committed prefix is literally the
prefix of the exhaustive campaign's run sequence: early stopping
changes *how many* runs are simulated, never *which* outcome any
individual run has.  The estimator stays unbiased in the standard
sequential-sampling sense, and the A/B equivalence suite asserts the
adaptive estimate lands inside the exhaustive run's CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError, SpecError
from repro.utils.stats import (
    ConfidenceInterval,
    confidence_interval,
    stratified_interval,
    zero_run_interval,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.campaign import Campaign, CampaignResult


@dataclass(frozen=True)
class AdaptiveConfig:
    """Stopping-rule parameters of an adaptive campaign.

    ``target_margin`` is the SDC-rate CI margin that ends the
    campaign; ``check_every`` is the commit-chunk size (the decision
    granularity); ``min_runs`` optionally floors the committed count
    before stopping is allowed.  ``campaign.config.runs`` stays the
    hard budget — a campaign that never reaches the target margin
    simply runs it out and reports ``converged=False``.
    """

    target_margin: float
    level: float = 0.95
    check_every: int = 64
    min_runs: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_margin < 1.0:
            raise ConfigError(
                f"target_margin {self.target_margin} outside (0, 1)"
            )
        zero_run_interval(self.level)  # validates the level
        if self.check_every < 1:
            raise ConfigError("check_every must be >= 1")
        if self.min_runs < 0:
            raise ConfigError("min_runs must be >= 0")

    def to_dict(self) -> dict:
        """Canonical image; joins the campaign's spec identity."""
        return {
            "target_margin": self.target_margin,
            "level": self.level,
            "check_every": self.check_every,
            "min_runs": self.min_runs,
        }


@dataclass(frozen=True)
class StopDecision:
    """One chunk-boundary evaluation of the stopping rule."""

    committed: int
    sdc: int
    interval: ConfidenceInterval
    stop: bool

    def to_dict(self) -> dict:
        """Canonical-JSON-ready image (interval bounds included)."""
        return {
            "committed": self.committed,
            "sdc": self.sdc,
            "stop": self.stop,
            "interval": self.interval.to_dict(),
        }


def should_stop(
    sdc: int, runs: int, target_margin: float, level: float = 0.95
) -> tuple[bool, ConfidenceInterval]:
    """Evaluate the stopping rule over a committed prefix.

    Returns ``(stop, interval)``; with zero committed runs the
    interval is the vacuous [0, 1] and the answer is always "keep
    going".  The Wilson interval keeps the margin honest at p=0 — the
    all-MASKED prefix that a normal-approximation CI would declare
    infinitely precise after one run.
    """
    if runs <= 0:
        return False, zero_run_interval(level)
    interval = confidence_interval(sdc, runs, level)
    return interval.margin <= target_margin, interval


@dataclass
class AdaptiveResult:
    """A stopped (or budget-exhausted) adaptive campaign.

    Wraps the committed :class:`CampaignResult` with the decision
    trail and the accounting that makes the efficiency claim
    checkable: how many runs the budget allowed, where the campaign
    stopped, and how many of the committed runs were actually
    *simulated* (as opposed to classified analytically by the batch
    engine's equivalence pruning).
    """

    result: "CampaignResult"
    config: AdaptiveConfig
    budget: int
    converged: bool
    decisions: list[StopDecision] = field(default_factory=list)

    @property
    def stopped_at(self) -> int:
        """Committed runs when the campaign ended."""
        return self.result.n_runs

    @property
    def interval(self) -> ConfidenceInterval:
        """The SDC interval at the stop point."""
        if not self.decisions:
            return zero_run_interval(self.config.level)
        return self.decisions[-1].interval

    @property
    def analytic_runs(self) -> int:
        """Committed runs classified without simulation."""
        snapshot = self.result.metrics_snapshot or {}
        counters = snapshot.get("counters", {})
        return int(counters.get("campaign.batch.analytic_lanes", 0))

    @property
    def simulated_runs(self) -> int:
        """Committed runs that actually executed the application."""
        return self.stopped_at - self.analytic_runs

    def to_dict(self) -> dict:
        """Deterministic image: config, stop trail, committed result."""
        return {
            "adaptive": self.config.to_dict(),
            "budget": self.budget,
            "stopped_at": self.stopped_at,
            "converged": self.converged,
            "decisions": [d.to_dict() for d in self.decisions],
            "result": self.result.to_dict(),
        }

    def summary(self) -> str:
        """Human-readable stop summary to append to a result table."""
        state = "converged" if self.converged else "budget exhausted"
        return (
            f"adaptive: {state} at {self.stopped_at}/{self.budget} runs "
            f"({self.simulated_runs} simulated, "
            f"{self.analytic_runs} analytic); SDC {self.interval}"
        )


def _plan_spans(budget: int, check_every: int) -> list[tuple[int, int]]:
    """Fixed commit-chunk spans — independent of jobs and batch."""
    return [
        (start, min(start + check_every, budget))
        for start in range(0, budget, check_every)
    ]


class _Committer:
    """In-order chunk commit + stop bookkeeping shared by both paths."""

    def __init__(self, config: AdaptiveConfig):
        self.config = config
        self.parts: list["CampaignResult"] = []
        self.decisions: list[StopDecision] = []
        self.committed = 0
        self.sdc = 0
        self.stopped = False

    def commit(self, part: "CampaignResult") -> bool:
        """Fold one chunk, evaluate the rule; True once stopped."""
        if self.stopped:
            return True
        self.parts.append(part)
        self.committed += part.n_runs
        self.sdc += part.sdc_count
        stop, interval = should_stop(
            self.sdc, self.committed,
            self.config.target_margin, self.config.level,
        )
        stop = stop and self.committed >= self.config.min_runs
        self.decisions.append(StopDecision(
            committed=self.committed, sdc=self.sdc,
            interval=interval, stop=stop,
        ))
        self.stopped = stop
        return stop


def run_adaptive(
    campaign: "Campaign",
    config: AdaptiveConfig,
    jobs: int | None = None,
) -> AdaptiveResult:
    """Drive ``campaign`` under the early-stopping rule.

    Serial execution commits chunk after chunk.  Parallel execution
    (``jobs > 1``) speculates one *wave* of chunks at a time across a
    :class:`~repro.runtime.executor.SpanPool`: every span in the wave
    runs concurrently, then results commit in run-index order and the
    rule is evaluated at each boundary — chunks past the first
    satisfied boundary are discarded.  A wave wastes at most
    ``jobs - 1`` speculative chunks, and the committed outcome is
    byte-identical to the serial one.  If no pool can be stood up
    (or it dies mid-wave) the whole campaign deterministically
    restarts on the serial path.
    """
    import time

    from repro.faults.campaign import CampaignResult
    from repro.runtime.executor import SpanPool, _PoolUnavailable

    n_jobs = campaign.jobs if jobs is None else int(jobs)
    if n_jobs < 1:
        raise ConfigError("jobs must be >= 1")
    progress = getattr(campaign, "progress", None)
    wall_begin = time.perf_counter()

    def observe(committer: "_Committer") -> None:
        # Live progress at each commit boundary; purely observational,
        # a None sink skips even the event construction.
        if progress is None or not committer.decisions:
            return
        from repro.obs.progress import ProgressEvent

        progress(ProgressEvent(
            phase="adaptive",
            done=committer.committed,
            total=budget,
            elapsed_s=time.perf_counter() - wall_begin,
            margin=committer.decisions[-1].interval.margin,
        ))

    if campaign.batch <= 1:
        # Result-invariant execution knob: sweep whole commit chunks
        # through the batch engine so analytic classification (and
        # equivalence pruning) carries the early-stopped campaign.
        campaign.batch = config.check_every
    budget = campaign.config.runs
    spans = _plan_spans(budget, config.check_every)
    committer = _Committer(config)
    discarded = 0
    if n_jobs > 1:
        try:
            with SpanPool(campaign, n_jobs) as pool:
                index = 0
                while index < len(spans) and not committer.stopped:
                    wave = spans[index:index + n_jobs]
                    for _start, part in pool.run(wave):
                        if committer.stopped:
                            discarded += part.n_runs
                        else:
                            committer.commit(part)
                            observe(committer)
                    index += len(wave)
        except _PoolUnavailable:
            # Deterministic restart: the committed prefix of a serial
            # rerun is identical, so recompute rather than splice.
            committer = _Committer(config)
            discarded = 0
            n_jobs = 1
    if n_jobs == 1:
        for start, stop in spans:
            stopped = committer.commit(campaign.run_span(start, stop))
            observe(committer)
            if stopped:
                break
    merged = CampaignResult.merge(committer.parts)
    campaign.metrics.merge_snapshot(merged.metrics_snapshot)
    campaign.metrics.inc("adaptive.decisions", len(committer.decisions))
    campaign.metrics.inc("adaptive.committed_runs", committer.committed)
    campaign.metrics.inc("adaptive.discarded_runs", discarded)
    return AdaptiveResult(
        result=merged,
        config=config,
        budget=budget,
        converged=committer.stopped,
        decisions=committer.decisions,
    )


def stratified_estimate(
    result: "CampaignResult",
    selection,
    level: float = 0.95,
) -> ConfidenceInterval:
    """Recombine a stratified campaign's records into one estimate.

    For a campaign run under a
    :class:`~repro.faults.selection.StratifiedSelection` with
    ``collect_records=True`` and single-block injections, rebuilds the
    per-stratum (SDC, runs) tallies from the run records' fault sites
    and recombines them with the stratum weights via
    :func:`repro.utils.stats.stratified_interval` — the unbiased
    estimate for the selection's target exposure distribution.
    """
    strata = getattr(selection, "strata", None)
    if not strata:
        raise SpecError(
            f"selection {selection.name!r} is not stratified"
        )
    if not result.records:
        raise SpecError(
            "stratified estimation needs run records "
            "(collect_records=True)"
        )
    if result.config.n_blocks != 1:
        raise SpecError(
            "stratified estimation requires single-block injections "
            f"(got n_blocks={result.config.n_blocks})"
        )
    tallies = [[0, 0] for _ in strata]  # [sdc, runs] per stratum
    for record in result.records:
        index = selection.stratum_of(record.faults[0].block_addr)
        tallies[index][1] += 1
        if record.outcome == "sdc":
            tallies[index][0] += 1
    return stratified_interval(
        [
            (stratum.weight, sdc, runs)
            for stratum, (sdc, runs) in zip(strata, tallies)
        ],
        level=level,
    )
