"""Multi-bit fault injection (the paper's Section II-C framework).

Faults are *permanent stuck-at* faults: within each selected 128-byte
data memory block one 32-bit word is targeted at random, and 2, 3, or
4 distinct bits of that word are stuck at 0 or 1 with equal
probability.  Campaigns run many statistically independent
experiments (1000 in the paper, for 95% confidence with ~3% margins)
and classify each run's outcome against the fault-free baseline.
"""

from repro.faults.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
)
from repro.faults.injector import apply_faults
from repro.faults.model import FaultSpec, sample_word_fault
from repro.faults.outcomes import Outcome, RunResult
from repro.faults.selection import (
    BlockSelection,
    hot_selection,
    miss_weighted_selection,
    rest_selection,
    uniform_selection,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "apply_faults",
    "FaultSpec",
    "sample_word_fault",
    "Outcome",
    "RunResult",
    "BlockSelection",
    "hot_selection",
    "miss_weighted_selection",
    "rest_selection",
    "uniform_selection",
]
