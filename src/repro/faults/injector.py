"""Applies fault specifications to device memory.

Two application paths share one overlay algebra:

* :func:`apply_faults` — the scalar path: one
  :meth:`~repro.arch.address_space.DeviceMemory.inject_stuck_at` call
  per stuck bit, merging into any existing overlay as it goes.
* :func:`merge_fault_masks` + :func:`apply_faults_merged` — the batched
  path: every fault's bits are first folded into one
  ``(or_mask, and_mask)`` pair per byte (later faults win ties, exactly
  like :meth:`~repro.arch.address_space.StuckAtOverlay.merged_with`),
  then installed with a single dict write per touched byte.  The batch
  engine also reuses the folded masks directly for its analytic
  visible-divergence classification, so planning and execution agree on
  the overlay semantics by construction.

Both paths leave the memory with identical overlays for the same fault
list.
"""

from __future__ import annotations

from repro.arch.address_space import DeviceMemory
from repro.faults.model import FaultSpec


def overlay_read_value(raw: int, or_mask: int, and_mask: int) -> int:
    """The value a faulted byte reads back as under the overlay algebra.

    Stuck-at-1 bits OR in, stuck-at-0 bits mask out — the single
    expression both the batch classifier and the provenance analyzer
    compare against raw bytes, kept here so analysis and injection can
    never disagree on the semantics.
    """
    return (raw | or_mask) & ~and_mask & 0xFF


def apply_faults(memory: DeviceMemory, faults: list[FaultSpec]) -> int:
    """Install the stuck-at overlays for every fault; returns the number
    of stuck bits injected."""
    injected = 0
    for fault in faults:
        for byte_addr, bit, value in fault.byte_level_faults():
            memory.inject_stuck_at(byte_addr, bit, value)
            injected += 1
    return injected


def merge_fault_masks(
    faults: list[FaultSpec],
) -> dict[int, tuple[int, int]]:
    """Fold every fault's stuck bits into per-byte overlay masks.

    Returns ``{byte_addr: (or_mask, and_mask)}`` — the read value of a
    faulted byte is ``(raw | or_mask) & ~and_mask``.  When several
    faults hit the same bit, the later fault in the list wins, matching
    the merge order of sequential :func:`apply_faults` injection.
    """
    merged: dict[int, tuple[int, int]] = {}
    for fault in faults:
        for byte_addr, (f_or, f_and) in fault.byte_masks().items():
            m_or, m_and = merged.get(byte_addr, (0, 0))
            # The later fault's bits override the earlier overlay.
            merged[byte_addr] = (
                (m_or & ~f_and) | f_or,
                (m_and & ~f_or) | f_and,
            )
    return merged


def apply_faults_merged(
    memory: DeviceMemory, masks: dict[int, tuple[int, int]]
) -> int:
    """Install pre-merged per-byte overlay masks (one write per byte).

    ``masks`` comes from :func:`merge_fault_masks`; the resulting
    overlays are identical to scalar :func:`apply_faults` of the same
    fault list.  Returns the number of stuck bits injected.
    """
    injected = 0
    for byte_addr, (or_mask, and_mask) in masks.items():
        memory.inject_stuck_mask(byte_addr, or_mask, and_mask)
        injected += (or_mask | and_mask).bit_count()
    return injected
