"""Applies fault specifications to device memory."""

from __future__ import annotations

from repro.arch.address_space import DeviceMemory
from repro.faults.model import FaultSpec


def apply_faults(memory: DeviceMemory, faults: list[FaultSpec]) -> int:
    """Install the stuck-at overlays for every fault; returns the number
    of stuck bits injected."""
    injected = 0
    for fault in faults:
        for byte_addr, bit, value in fault.byte_level_faults():
            memory.inject_stuck_at(byte_addr, bit, value)
            injected += 1
    return injected
