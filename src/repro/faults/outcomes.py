"""Run-outcome taxonomy for fault-injection experiments.

The five outcomes say how a run *ended*; the provenance surface
(:mod:`repro.obs.provenance`) refines each into a *cause* — why a
masked run was masked (value agreement, dead word, overwrite window),
or what fired for a loud one (replica compare, SECDED decode) — via
the :data:`~repro.obs.provenance.PROVENANCE_CAUSES` taxonomy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Outcome(enum.Enum):
    """How one fault-injected application run ended.

    * ``MASKED`` — the run completed and the output matched the
      fault-free baseline within the application's Table II threshold.
    * ``SDC`` — the run completed but the output deviated beyond the
      threshold: silent data corruption, the paper's headline metric.
    * ``DETECTED`` — the detection scheme observed a replica mismatch
      and terminated the run (the user reruns; never silent).
    * ``CORRECTED`` — the correction scheme repaired at least one read
      via majority vote and the output matched the baseline.
    * ``CRASH`` — the run aborted (corrupted indices/bounds walked
      outside allocations); loud, hence not an SDC.
    """

    MASKED = "masked"
    SDC = "sdc"
    DETECTED = "detected"
    CORRECTED = "corrected"
    CRASH = "crash"

    @property
    def is_silent_corruption(self) -> bool:
        return self is Outcome.SDC

    @property
    def is_benign(self) -> bool:
        """Run produced correct output (possibly thanks to correction)."""
        return self in (Outcome.MASKED, Outcome.CORRECTED)


@dataclass(frozen=True)
class RunResult:
    """Result of a single fault-injection run."""

    run_index: int
    outcome: Outcome
    error: float
    detail: str = ""
