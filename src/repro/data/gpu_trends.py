"""L2-cache size trend across GPU generations (the paper's Figure 2).

A small survey dataset of NVIDIA and AMD flagship GPUs, compiled from
the vendors' architecture whitepapers.  The figure's point: last-level
cache capacity grows relentlessly (the Ampere A100's L2 is ~10x its
predecessor's), which is exactly the structure that low-voltage
operation — and hence multi-bit faults — targets.
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024


@dataclass(frozen=True)
class GpuGeneration:
    vendor: str
    model: str
    year: int
    l2_kib: int

    @property
    def l2_mib(self) -> float:
        return self.l2_kib / 1024.0


#: Chronological survey of flagship L2 capacities.
L2_SIZE_TREND: tuple[GpuGeneration, ...] = (
    GpuGeneration("NVIDIA", "GTX 480 (Fermi)", 2010, 768),
    GpuGeneration("NVIDIA", "GTX 680 (Kepler)", 2012, 512),
    GpuGeneration("AMD", "HD 7970 (GCN1)", 2012, 768),
    GpuGeneration("NVIDIA", "Tesla K40 (Kepler)", 2013, 1536),
    GpuGeneration("AMD", "R9 290X (GCN2)", 2013, 1024),
    GpuGeneration("NVIDIA", "GTX 980 (Maxwell)", 2014, 2048),
    GpuGeneration("AMD", "Fury X (GCN3)", 2015, 2048),
    GpuGeneration("NVIDIA", "Tesla P100 (Pascal)", 2016, 4096),
    GpuGeneration("NVIDIA", "Tesla V100 (Volta)", 2017, 6144),
    GpuGeneration("AMD", "Vega 64 (GCN5)", 2017, 4096),
    GpuGeneration("NVIDIA", "RTX 2080 Ti (Turing)", 2018, 5632),
    GpuGeneration("AMD", "MI60 (Vega 20)", 2018, 4096),
    GpuGeneration("NVIDIA", "A100 (Ampere)", 2020, 40960),
    GpuGeneration("AMD", "MI100 (CDNA)", 2020, 8192),
)


def trend_for(vendor: str) -> list[GpuGeneration]:
    """Chronological entries for one vendor."""
    return [g for g in L2_SIZE_TREND if g.vendor == vendor]


def growth_factor(vendor: str) -> float:
    """Last/first L2 capacity ratio for a vendor's surveyed span."""
    entries = trend_for(vendor)
    if len(entries) < 2:
        raise ValueError(f"not enough {vendor} entries for a trend")
    return entries[-1].l2_kib / entries[0].l2_kib
