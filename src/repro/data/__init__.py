"""Static datasets used by the motivation figures."""

from repro.data.gpu_trends import GpuGeneration, L2_SIZE_TREND

__all__ = ["GpuGeneration", "L2_SIZE_TREND"]
