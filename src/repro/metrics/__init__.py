"""Application output-error metrics (the paper's Table II).

Each evaluated application declares one metric that turns
(golden output, observed output) into a scalar error plus an SDC
verdict against a threshold:

* ``MisclassificationMetric`` — C-NN: percentage of vector
  classifications that differ from the fault-free baseline.
* ``VectorDeviationMetric`` — Polybench: percentage of output vector
  elements whose value differs from the baseline.
* ``NrmseMetric`` — AxBench: normalized root-mean-square error of the
  output image against the baseline image.
"""

from repro.metrics.base import MetricResult, OutputMetric
from repro.metrics.classification import MisclassificationMetric
from repro.metrics.image import NrmseMetric
from repro.metrics.vector import VectorDeviationMetric

__all__ = [
    "MetricResult",
    "OutputMetric",
    "MisclassificationMetric",
    "NrmseMetric",
    "VectorDeviationMetric",
]
