"""NRMSE metric for the AxBench image applications.

Table II: "Normalized Root Mean Square Error compared to the baseline
image."  The RMSE is normalized by the dynamic range of the baseline
image, the convention AxBench's image quality checker uses.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import OutputMetric


class NrmseMetric(OutputMetric):
    """Range-normalized RMSE between images."""

    description = (
        "Normalized Root Mean Square Error compared to the baseline image"
    )

    #: AxBench's canonical acceptable-quality bound: 10% error.
    #: Localized damage (a few corrupted pixel blocks perturb a handful
    #: of 3x3 output neighbourhoods, NRMSE of order a few percent at
    #: 96x96) stays acceptable, while corruption of the filter
    #: coefficients or bounds — which degrades the whole image — is an
    #: SDC.
    def __init__(self, threshold: float = 0.10):
        super().__init__(threshold)

    def error(self, golden: np.ndarray, observed: np.ndarray) -> float:
        with np.errstate(invalid="ignore"):
            golden = np.asarray(golden, dtype=np.float64)
            observed = np.asarray(observed, dtype=np.float64)
        if golden.size == 0:
            raise ValueError("cannot compare empty images")
        bad = ~np.isfinite(observed)
        if bad.any():
            return float("inf")
        span = float(golden.max() - golden.min())
        if span == 0.0:
            span = max(abs(float(golden.max())), 1.0)
        rmse = float(np.sqrt(np.mean((observed - golden) ** 2)))
        return rmse / span
