"""Vector-deviation metric for the Polybench applications.

Table II: "Percentage of output vector elements with different values
than the baseline."  An element counts as different when it deviates
beyond a small relative tolerance.

The SDC threshold is a *percentage of elements*: the paper sets a
per-application output-quality threshold, under which a fault that
perturbs only a few output elements (each corrupted element of the
large streamed matrix touches one row/column entry, so a 5-block
fault cluster corrupts ~10 elements) is an acceptable deviation,
while a corrupted hot vector element poisons every output element and
trips the threshold.  The default of 3% keeps that separation at this
repo's reduced output sizes (the paper's 3072-element outputs make the
same separation with a much smaller threshold).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import OutputMetric


class VectorDeviationMetric(OutputMetric):
    """Percentage of vector elements deviating from the baseline."""

    description = (
        "Percentage of output vector elements with different values "
        "than the baseline"
    )

    def __init__(self, threshold: float = 3.0, rel_tol: float = 1e-6):
        super().__init__(threshold)
        if rel_tol < 0:
            raise ValueError("rel_tol must be non-negative")
        self.rel_tol = rel_tol

    def error(self, golden: np.ndarray, observed: np.ndarray) -> float:
        golden = np.asarray(golden, dtype=np.float64).ravel()
        observed = np.asarray(observed, dtype=np.float64).ravel()
        if golden.size == 0:
            raise ValueError("cannot compare empty outputs")
        bad = ~np.isfinite(observed)
        scale = np.maximum(np.abs(golden), 1e-30)
        with np.errstate(invalid="ignore"):
            deviates = np.abs(observed - golden) > self.rel_tol * scale
        differing = np.count_nonzero(deviates | bad)
        return 100.0 * differing / golden.size
