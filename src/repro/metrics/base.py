"""Base protocol for output-quality metrics."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MetricResult:
    """Outcome of comparing an observed output against the golden one."""

    error: float
    threshold: float
    is_sdc: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "SDC" if self.is_sdc else "ok"
        return f"error={self.error:.6g} (threshold {self.threshold:g}): " \
               f"{verdict}"


class OutputMetric(abc.ABC):
    """Compares application outputs and decides SDC vs acceptable.

    The threshold semantics follow the paper: outputs whose error
    exceeds the threshold are silent data corruptions; below it they
    are treated as acceptable (masked) deviations.
    """

    #: Human-readable name matching Table II wording.
    description: str = ""

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    @abc.abstractmethod
    def error(self, golden: np.ndarray, observed: np.ndarray) -> float:
        """Scalar error of ``observed`` w.r.t. ``golden``."""

    def compare(self, golden: np.ndarray, observed: np.ndarray) \
            -> MetricResult:
        """Compute the error and classify it against the threshold."""
        golden = np.asarray(golden)
        observed = np.asarray(observed)
        if golden.shape != observed.shape:
            raise ValueError(
                f"shape mismatch: golden {golden.shape} vs "
                f"observed {observed.shape}"
            )
        err = self.error(golden, observed)
        if not np.isfinite(err):
            # Non-finite outputs (NaN/inf from corrupted math) are
            # unambiguously corrupt.
            return MetricResult(float("inf"), self.threshold, True)
        return MetricResult(err, self.threshold, err > self.threshold)
