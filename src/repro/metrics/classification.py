"""Misclassification metric for C-NN.

Table II: "Percentage of mis-classifications in output."  Outputs are
vectors of class labels (the argmax of the network's final layer per
input image); any label differing from the fault-free baseline run is
a misclassification.

The SDC threshold is expressed in *images*: a fault corrupting one
input image flips at most that image's label (an input-quality
problem, localized), while a fault in the shared convolution weights
flips labels across the whole batch (a systemic SDC).  The helper
:func:`batch_threshold` encodes "more than one misclassified image is
an SDC" at any batch size.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import OutputMetric


def batch_threshold(batch: int, tolerated_images: float = 1.5) -> float:
    """Misclassification-percentage threshold tolerating one flipped
    image out of ``batch``: a fault corrupting a single input image is
    localized input damage, while two or more flips indicate systemic
    (weight-space) corruption.  Set ``tolerated_images=0.5`` for the
    strict any-flip variant."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    return 100.0 * tolerated_images / batch


class MisclassificationMetric(OutputMetric):
    """Percentage of class labels differing from the baseline."""

    description = "Percentage of mis-classifications in output"

    def __init__(self, threshold: float = 0.0):
        super().__init__(threshold)

    def error(self, golden: np.ndarray, observed: np.ndarray) -> float:
        golden = np.asarray(golden).ravel()
        observed = np.asarray(observed).ravel()
        if golden.size == 0:
            raise ValueError("cannot compare empty classification vectors")
        wrong = np.count_nonzero(golden != observed)
        return 100.0 * wrong / golden.size
