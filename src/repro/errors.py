"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming mistakes (``TypeError`` etc. still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AllocationError(ReproError):
    """Device-memory allocation failed (out of space or bad request)."""


class AddressError(ReproError):
    """An address fell outside any live allocation."""


class ConfigError(ReproError):
    """An architecture or workload configuration is invalid."""


class TraceError(ReproError):
    """A kernel trace is malformed or inconsistent."""


class FaultDetected(ReproError):
    """Raised by the detection-only scheme when replica copies mismatch.

    This models the *terminate* signal of the paper's detection scheme:
    the application exits early and notifies the user, who is expected
    to rerun it.  A run ending with this exception is classified as
    outcome ``DETECTED`` (never SDC).
    """

    def __init__(self, object_name: str, block_index: int, message: str = ""):
        self.object_name = object_name
        self.block_index = block_index
        detail = message or (
            f"replica mismatch in object {object_name!r}, "
            f"block {block_index}"
        )
        super().__init__(detail)


class UncorrectableFault(ReproError):
    """Majority vote failed: two or more copies agree on faulty bits."""


class KernelCrash(ReproError):
    """The functional execution of a kernel crashed.

    Faults in data used for indexing or control flow can push the
    simulated application outside its valid address space or produce
    non-finite intermediate state that a real GPU program would trap
    on.  The fault-injection campaign classifies such runs as CRASH.
    """
