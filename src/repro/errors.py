"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming mistakes (``TypeError`` etc. still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AllocationError(ReproError):
    """Device-memory allocation failed (out of space or bad request)."""


class AddressError(ReproError):
    """An address fell outside any live allocation."""


class ConfigError(ReproError):
    """An architecture or workload configuration is invalid."""


class UnknownAppError(ConfigError):
    """An application name did not resolve against the registry.

    Carries the offending ``name`` and the sorted ``known`` names so
    callers (and the CLI's exit-code mapping) can render a helpful
    message without parsing the string.
    """

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = list(known)
        super().__init__(
            f"unknown application {name!r}; known: {self.known}"
        )


class UnknownSchemeError(ConfigError):
    """A resilience-scheme name did not resolve against the factory."""

    def __init__(self, name: str, known: tuple[str, ...]):
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown scheme {name!r}; expected one of {self.known}"
        )


class SpecError(ConfigError):
    """A declarative spec (sweep grid, protection level) is invalid."""


class TelemetryError(ConfigError):
    """A telemetry record or file failed schema validation."""


class CheckpointError(ReproError):
    """On-disk checkpoint data is corrupt, missing, or mismatched.

    Raised when a checkpoint directory belongs to a different sweep,
    a chunk file fails its content digest, or a manifest/payload does
    not decode as the expected canonical JSON.
    """


class SessionError(ReproError):
    """A sweep session could not complete (retries exhausted, broken
    worker pool with no serial fallback, inconsistent plan)."""


class SessionInterrupted(SessionError):
    """A sweep session stopped early with durable progress on disk.

    Raised on ``SIGINT`` or when a configured chunk budget
    (``stop_after_chunks``) is reached; the completed chunks are
    checkpointed and a later run with ``resume=True`` continues from
    them.
    """

    def __init__(self, done: int, total: int, reason: str = "interrupted"):
        self.done = done
        self.total = total
        self.reason = reason
        super().__init__(
            f"session {reason} after {done}/{total} chunk(s); "
            "completed work is checkpointed — rerun with resume to "
            "continue"
        )


class StoreError(ReproError):
    """A results-warehouse operation failed.

    Raised when a store file cannot be opened or carries an
    incompatible schema version, when an ingest source is truncated,
    corrupt, or of an unrecognizable record kind, or when an export
    target cell does not exist.  The CLI maps it to its own exit code
    (7) so batch pipelines can distinguish warehouse trouble from
    configuration errors.
    """


class TraceError(ReproError):
    """A kernel trace is malformed or inconsistent."""


class MetricsError(ReproError):
    """Metric snapshots from incompatible registries cannot merge.

    Raised when a worker ships home a histogram snapshot whose bucket
    bounds differ from the parent registry's — folding the counts
    together would silently mix incomparable buckets.
    """


class FaultDetected(ReproError):
    """Raised by the detection-only scheme when replica copies mismatch.

    This models the *terminate* signal of the paper's detection scheme:
    the application exits early and notifies the user, who is expected
    to rerun it.  A run ending with this exception is classified as
    outcome ``DETECTED`` (never SDC).
    """

    def __init__(self, object_name: str, block_index: int, message: str = ""):
        self.object_name = object_name
        self.block_index = block_index
        detail = message or (
            f"replica mismatch in object {object_name!r}, "
            f"block {block_index}"
        )
        super().__init__(detail)


class UncorrectableFault(ReproError):
    """Majority vote failed: two or more copies agree on faulty bits."""


class KernelCrash(ReproError):
    """The functional execution of a kernel crashed.

    Faults in data used for indexing or control flow can push the
    simulated application outside its valid address space or produce
    non-finite intermediate state that a real GPU program would trap
    on.  The fault-injection campaign classifies such runs as CRASH.
    """
