"""Comparison baselines from the paper's related work (Section VI).

Two classic software fault-tolerance approaches the paper positions
itself against:

* **Redundant execution (DMR)** — run the kernel twice and compare
  the outputs (compiler-managed redundant multithreading, Wadden et
  al. / Gupta et al.).  Its blind spot for *memory* faults is
  structural: both executions read the same (corrupted) data from the
  same addresses, compute the same wrong answer, and agree — a
  permanent stuck-at fault in DRAM is invisible to computation
  redundancy.  The timing cost, meanwhile, is roughly the whole
  kernel again.
* **Checkpoint/restart** — periodically snapshot writable state so a
  detected fault rolls back instead of rerunning from scratch (Garg
  et al.'s CRUM, Nukada et al.'s NVCR).  The paper cites its overhead
  as prohibitive for GPU working sets [29]; the analytical model here
  (and :mod:`repro.analysis.recovery`) quantifies when that is true.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.errors import ConfigError, FaultDetected, KernelCrash
from repro.faults.outcomes import Outcome
from repro.kernels.base import GpuApplication, PlainReader


@dataclass(frozen=True)
class DmrOutcome:
    """Result of one dual-modular-redundant execution."""

    outcome: Outcome
    runs_agreed: bool
    error: float


def run_dmr(
    app: GpuApplication, memory: DeviceMemory
) -> tuple[np.ndarray, bool]:
    """Execute the application twice on the same device memory and
    compare the outputs bit-for-bit.

    Returns (first output, agreed).  With deterministic kernels and
    *permanent* data faults the two executions always agree — both
    read the same corrupted bits — which is precisely why the paper
    replicates data instead of computation.
    """
    first_mem = memory.clone_with_faults()
    second_mem = memory.clone_with_faults()
    first = app.execute(first_mem, PlainReader(first_mem))
    second = app.execute(second_mem, PlainReader(second_mem))
    agreed = np.array_equal(
        np.asarray(first), np.asarray(second), equal_nan=True)
    return first, agreed


def dmr_slowdown(baseline_cycles: int, compare_cycles: int = 0) -> float:
    """Timing model of DMR: the kernel runs twice (redundant threads
    contend for the same resources) plus the output comparison."""
    if baseline_cycles <= 0:
        raise ConfigError("baseline cycles must be positive")
    return (2 * baseline_cycles + compare_cycles) / baseline_cycles


@dataclass(frozen=True)
class CheckpointModel:
    """Analytical checkpoint/restart cost model.

    A checkpoint copies every writable byte of application state to a
    safe region through the memory system; ``effective_bw_bytes_per_
    cycle`` aggregates the paper GPU's channel bandwidth.  The
    *overhead* is paid every interval whether or not faults occur; the
    *benefit* only materializes on recovery (see
    :func:`repro.analysis.recovery.expected_runtime`).
    """

    writable_bytes: int
    checkpoint_interval_cycles: int
    #: Aggregate write bandwidth during a checkpoint (6 channels x
    #: 32B/cycle in the Table I configuration).
    effective_bw_bytes_per_cycle: int = 192

    def __post_init__(self) -> None:
        if self.writable_bytes <= 0:
            raise ConfigError("writable_bytes must be positive")
        if self.checkpoint_interval_cycles <= 0:
            raise ConfigError("checkpoint interval must be positive")
        if self.effective_bw_bytes_per_cycle <= 0:
            raise ConfigError("bandwidth must be positive")

    @property
    def checkpoint_cost_cycles(self) -> int:
        """Cycles to write one snapshot."""
        return -(-self.writable_bytes
                 // self.effective_bw_bytes_per_cycle)

    @property
    def overhead_fraction(self) -> float:
        """Steady-state slowdown from checkpointing alone."""
        return self.checkpoint_cost_cycles \
            / self.checkpoint_interval_cycles

    @classmethod
    def for_app(
        cls,
        memory: DeviceMemory,
        total_cycles: int,
        n_checkpoints: int = 10,
        config: GpuConfig = PAPER_CONFIG,
        full_memory: bool = True,
    ) -> "CheckpointModel":
        """Model checkpointing an application ``n_checkpoints`` times.

        Transparent GPU checkpointing frameworks (CRUM, NVCR) snapshot
        the *entire device allocation* — they cannot know which bytes
        a kernel dirtied — which is the "large amounts of data" cost
        the paper calls prohibitive.  Pass ``full_memory=False`` for
        an idealized dirty-state-only checkpointer.
        """
        if full_memory:
            snapshot_bytes = memory.bytes_allocated
        else:
            snapshot_bytes = sum(
                obj.nbytes for obj in memory.objects
                if not obj.read_only
            )
        if snapshot_bytes == 0:
            raise ConfigError("application has no state to checkpoint")
        interval = max(total_cycles // max(n_checkpoints, 1), 1)
        bandwidth = (config.n_mem_channels
                     * config.interconnect_bytes_per_cycle)
        return cls(snapshot_bytes, interval, bandwidth)


def classify_dmr_run(
    app: GpuApplication, memory: DeviceMemory, golden: np.ndarray
) -> DmrOutcome:
    """Outcome of a DMR-protected, fault-injected run."""
    try:
        with np.errstate(all="ignore"):
            output, agreed = run_dmr(app, memory)
    except KernelCrash:
        return DmrOutcome(Outcome.CRASH, True, 0.0)
    except FaultDetected:  # pragma: no cover - DMR has no scheme
        return DmrOutcome(Outcome.DETECTED, False, 0.0)
    if not agreed:
        return DmrOutcome(Outcome.DETECTED, False, 0.0)
    metric = app.error_metric.compare(golden, output)
    outcome = Outcome.SDC if metric.is_sdc else Outcome.MASKED
    return DmrOutcome(outcome, True, metric.error)
