"""End-to-end reliability management API.

:class:`ReliabilityManager` wires the whole pipeline together for one
application: trace generation, access profiling, hot-block/hot-object
identification, fault-injection campaigns (reliability, Figs 6/9) and
timing simulation (performance, Fig 7).

All profiling artifacts are computed lazily and cached — the paper's
"one-time offline analysis".
"""

from __future__ import annotations

from functools import cached_property

from repro.arch.address_space import DeviceMemory
from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.core.hardware import HardwareBudget
from repro.core.protection import ProtectionSpec
from repro.core.request import EvaluationRequest
from repro.errors import ConfigError, SpecError
from repro.faults.campaign import Campaign, CampaignConfig, CampaignResult
from repro.faults.selection import (
    BlockSelection,
    access_weighted_selection,
    hot_selection,
    miss_weighted_selection,
    rest_selection,
    uniform_selection,
)
from repro.kernels.base import GpuApplication
from repro.kernels.trace import AppTrace
from repro.profiling.access_profile import AccessProfile, profile_trace
from repro.profiling.hot_blocks import (
    HotBlockClassification,
    classify_hot_blocks,
)
from repro.profiling.hot_objects import Table3Row, table3_row
from repro.profiling.instrument import DiscoveryResult, discover
from repro.profiling.miss_profile import l1_miss_profile


class ReliabilityManager:
    """Profile an application and run the paper's experiments on it."""

    def __init__(
        self,
        app: GpuApplication,
        config: GpuConfig = PAPER_CONFIG,
        hot_factor: float = 8.0,
        jobs: int = 1,
    ):
        if jobs < 1:
            raise ConfigError("jobs must be >= 1")
        app.validate_declarations()
        self.app = app
        self.config = config
        self.hot_factor = hot_factor
        self.jobs = jobs
        self.budget = HardwareBudget.from_config(config)

    # ------------------------------------------------------------------
    # Cached offline analyses
    # ------------------------------------------------------------------
    @cached_property
    def memory(self) -> DeviceMemory:
        """Pristine device memory with the app's allocations."""
        return self.app.fresh_memory()

    @cached_property
    def trace(self) -> AppTrace:
        trace = self.app.build_trace(self.memory)
        trace.validate()
        return trace

    @cached_property
    def profile(self) -> AccessProfile:
        return profile_trace(self.trace, self.memory)

    @cached_property
    def hot_blocks(self) -> HotBlockClassification:
        return classify_hot_blocks(self.profile, hot_factor=self.hot_factor)

    @cached_property
    def miss_counts(self) -> dict[int, int]:
        return l1_miss_profile(self.trace, self.config)

    def table3(self) -> Table3Row:
        """This app's Table III statistics."""
        return table3_row(self.app, self.profile, self.memory)

    def discover_hot_objects(self) -> DiscoveryResult:
        """Instrumentation-style discovery (ignores declared answers)."""
        return discover(self.app, self.memory, hot_factor=self.hot_factor)

    # ------------------------------------------------------------------
    # Protection levels
    # ------------------------------------------------------------------
    def protected_names(self, protect: int | str) -> tuple[str, ...]:
        """Resolve a protection level to object names.

        ``protect`` is an integer (cumulatively protect the first N
        objects of the importance order — the x-axis of Figs 7/9) or
        one of ``"none"``, ``"hot"``, ``"all"``.
        """
        order = self.app.object_importance
        if protect == "none":
            return ()
        if protect == "hot":
            return tuple(
                n for n in order if n in self.app.hot_object_names
            )
        if protect == "all":
            return tuple(order)
        if isinstance(protect, int):
            if not 0 <= protect <= len(order):
                raise SpecError(
                    f"protect={protect} outside [0, {len(order)}]"
                )
            return tuple(order[:protect])
        if isinstance(protect, ProtectionSpec):
            return protect.objects
        raise SpecError(f"bad protection level {protect!r}")

    def protection_spec(
        self, scheme: str, protect
    ) -> ProtectionSpec:
        """Resolve any protection spelling to a typed spec.

        ``protect`` may already be a
        :class:`~repro.core.protection.ProtectionSpec`, an explicit
        assignment string (``"obj=detection,obj2=correction"``), or
        the contextual shorthands :meth:`protected_names` resolves
        (``"none"``/``"hot"``/``"all"``/count) — the latter protected
        uniformly with ``scheme``.
        """
        if isinstance(protect, ProtectionSpec):
            return protect
        if isinstance(protect, str) and "=" in protect:
            return ProtectionSpec.parse(protect)
        return ProtectionSpec.uniform(
            scheme, self.protected_names(protect)
        )

    # ------------------------------------------------------------------
    # Block selections
    # ------------------------------------------------------------------
    def selection(self, kind: str) -> BlockSelection:
        """Build a block-selection policy.

        ``"hot"``/``"rest"`` — uniform over the (non-)hot blocks, the
        Fig 5/6 motivation experiment.  ``"access-weighted"`` — the
        Fig 8/9 evaluation policy at this repo's scale (see
        selection.py).  ``"miss-weighted"`` — the literal Fig 8 policy
        using the simulated L1.  ``"uniform"`` — uniform over every
        accessed block.
        """
        if kind in ("hot", "rest"):
            # Fig 5/6 splits at the object granularity the schemes
            # protect: the hot arm is the blocks of the hot data
            # objects (which the access profile ranks on top and which
            # are also warp-shared, Observation II); everything else
            # accessed is the rest arm.
            hot_addrs = {
                addr
                for obj in self.app.hot_objects(self.memory)
                for addr in obj.block_addrs()
            }
            if kind == "hot":
                if not hot_addrs:
                    raise ConfigError(
                        f"{self.app.name} has no hot objects to select from"
                    )
                return hot_selection(sorted(hot_addrs))
            rest = set(self.profile.block_reads) - hot_addrs
            return rest_selection(sorted(rest))
        if kind == "miss-weighted":
            return miss_weighted_selection(self.miss_counts)
        if kind == "access-weighted":
            return access_weighted_selection(self.profile.block_reads)
        if kind == "uniform":
            return uniform_selection(sorted(self.profile.block_reads))
        if kind == "stratified":
            from repro.faults.selection import stratify_by_object

            return stratify_by_object(
                self.profile.block_reads, self.memory.objects
            )
        raise SpecError(f"unknown selection kind {kind!r}")

    # ------------------------------------------------------------------
    # Experiments
    # ------------------------------------------------------------------
    def evaluate(
        self,
        scheme: str = "correction",
        protect: int | str = "hot",
        runs: int = 1000,
        n_blocks: int = 1,
        n_bits: int = 2,
        selection: str = "access-weighted",
        seed: int = 20210621,
        keep_runs: bool = False,
        jobs: int | None = None,
        collect_records: bool = False,
        collect_provenance: bool = False,
        metrics=None,
        batch: int = 1,
        max_batch_bytes: int = 256 * 1024 * 1024,
        target_margin: float | None = None,
        progress=None,
        request: EvaluationRequest | None = None,
    ) -> CampaignResult:
        """The reliability evaluation (one Fig 9 configuration).

        ``jobs`` (worker processes for the campaign) defaults to the
        manager's own ``jobs`` setting.  ``collect_records=True`` fills
        the result's per-run telemetry records;
        ``collect_provenance=True`` its per-run
        :class:`~repro.obs.provenance.ProvenanceRecord` stream;
        ``metrics`` names the
        :class:`~repro.obs.metrics.MetricsRegistry` observability
        accumulates into.  ``batch`` propagates that many runs per
        vectorized sweep (results are identical to ``batch=1``);
        ``max_batch_bytes`` clamps its memory footprint.
        ``target_margin`` turns on CI-driven early stopping with
        ``runs`` as the budget (see :meth:`evaluate_adaptive` for the
        full decision trail).  ``progress`` names a live-progress sink
        (one :class:`~repro.obs.progress.ProgressEvent` per chunk);
        campaign results are identical with or without it.

        Alternatively pass the whole experiment as one
        :class:`~repro.core.request.EvaluationRequest` via
        ``request=`` — the unified surface shared with
        :class:`~repro.runtime.session.Session` and
        :func:`~repro.search.engine.optimize` — in which case the
        request supplies every field above (its ``app`` must name
        this manager's application).
        """
        if request is not None:
            return self._request_campaign(
                request, metrics=metrics, progress=progress
            ).run()
        campaign = self._evaluation_campaign(
            scheme, protect, runs, n_blocks, n_bits, selection, seed,
            keep_runs, jobs, collect_records, collect_provenance,
            metrics, batch, max_batch_bytes, target_margin, progress,
        )
        return campaign.run()

    def evaluate_adaptive(
        self,
        target_margin: float = 0.03,
        scheme: str = "correction",
        protect: int | str = "hot",
        runs: int = 1000,
        n_blocks: int = 1,
        n_bits: int = 2,
        selection: str = "access-weighted",
        seed: int = 20210621,
        keep_runs: bool = False,
        jobs: int | None = None,
        collect_records: bool = False,
        collect_provenance: bool = False,
        metrics=None,
        batch: int = 1,
        max_batch_bytes: int = 256 * 1024 * 1024,
        progress=None,
    ):
        """Adaptive reliability evaluation: stop at the target margin.

        Same experiment as :meth:`evaluate` but returns the
        :class:`~repro.faults.adaptive.AdaptiveResult` — committed
        result plus the chunk-boundary stop-decision trail — instead
        of only the merged :class:`CampaignResult`.
        """
        campaign = self._evaluation_campaign(
            scheme, protect, runs, n_blocks, n_bits, selection, seed,
            keep_runs, jobs, collect_records, collect_provenance,
            metrics, batch, max_batch_bytes, target_margin, progress,
        )
        return campaign.run_adaptive()

    def _request_campaign(
        self, request: EvaluationRequest, metrics=None, progress=None,
    ) -> Campaign:
        """Materialize an :class:`EvaluationRequest` as a campaign.

        Explicitly passed sinks win over the request's own.
        """
        if request.app != self.app.name:
            raise SpecError(
                f"request is for {request.app!r}, this manager "
                f"drives {self.app.name!r}"
            )
        return self._evaluation_campaign(
            request.scheme, request.protect, request.runs,
            request.n_blocks, request.n_bits, request.selection,
            request.seed, request.keep_runs, request.jobs,
            request.collect_records, request.collect_provenance,
            metrics if metrics is not None else request.metrics,
            request.batch, request.max_batch_bytes,
            request.target_margin,
            progress if progress is not None else request.progress,
            secded=request.secded,
        )

    def _evaluation_campaign(
        self, scheme, protect, runs, n_blocks, n_bits, selection,
        seed, keep_runs, jobs, collect_records, collect_provenance,
        metrics, batch, max_batch_bytes, target_margin, progress=None,
        secded=False,
    ) -> Campaign:
        if isinstance(protect, ProtectionSpec) or (
            isinstance(protect, str) and "=" in protect
        ):
            # Typed (or explicit per-object) protection fully
            # determines scheme and objects; ``scheme`` is unused.
            how = {"protection": self.protection_spec(scheme, protect)}
        else:
            how = {"scheme": scheme,
                   "protect": self.protected_names(protect)}
        return Campaign(
            self.app,
            self.selection(selection),
            **how,
            config=CampaignConfig(
                runs=runs, n_blocks=n_blocks, n_bits=n_bits, seed=seed,
                secded=secded,
            ),
            keep_runs=keep_runs,
            jobs=self.jobs if jobs is None else jobs,
            collect_records=collect_records,
            collect_provenance=collect_provenance,
            metrics=metrics,
            batch=batch,
            max_batch_bytes=max_batch_bytes,
            target_margin=target_margin,
            progress=progress,
        )

    def motivation(
        self,
        space: str,
        runs: int = 1000,
        n_blocks: int = 1,
        n_bits: int = 2,
        seed: int = 20210621,
        jobs: int | None = None,
    ) -> CampaignResult:
        """The Fig 6 motivation experiment: unprotected app, faults in
        ``space`` in {"hot", "rest"}."""
        if space not in ("hot", "rest"):
            raise ConfigError("motivation space must be 'hot' or 'rest'")
        campaign = Campaign(
            self.app,
            self.selection(space),
            scheme="baseline",
            config=CampaignConfig(
                runs=runs, n_blocks=n_blocks, n_bits=n_bits, seed=seed
            ),
            jobs=self.jobs if jobs is None else jobs,
        )
        return campaign.run()

    def simulate_performance(
        self, scheme: str = "baseline",
        protect: int | str | ProtectionSpec = "none",
        metrics=None, tracer=None,
    ):
        """One timing run (a Fig 7 bar): returns a SimReport.

        ``protect`` accepts every spelling
        :meth:`protection_spec` does — a typed
        :class:`~repro.core.protection.ProtectionSpec` (mixed
        per-object schemes included) or the string shorthands.

        Imported lazily to keep the functional pipeline import-light.
        ``metrics`` optionally receives the simulator's observability
        counters (see :func:`~repro.sim.simulator.simulate_trace`);
        ``tracer`` a :class:`~repro.obs.trace.TraceSession` recording
        the cycle-level event trace of this run.
        """
        from repro.sim.simulator import simulate_app

        spec = self.protection_spec(scheme, protect)
        return simulate_app(
            self.app,
            trace=self.trace,
            memory=self.memory,
            config=self.config,
            scheme_name=spec.scheme_label,
            protected_names=spec.objects,
            budget=self.budget,
            metrics=metrics,
            tracer=tracer,
            schemes=spec.schemes if spec.is_mixed else None,
        )
