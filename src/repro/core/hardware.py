"""Hardware cost model of the schemes (the paper's Section IV-C).

The implementation overhead the paper budgets per SM's LD/ST unit:

* a 128-byte *start-address table* holding the replica base addresses
  — 32 protected objects for detection (one 32-bit address each) or 16
  for detection-and-correction (two each);
* a 128-byte *load-instruction table* of up to 32 PC addresses of the
  load instructions touching protected objects (the applications never
  exceed 22);
* a 32-bit adder to rebase the original access offset onto each
  replica;
* a 256-bit comparator that checks copies 32 bytes per cycle;
* a 128-byte queue of up to 32 loads awaiting their lazy comparison.

This module enforces those capacities (so an experiment that would not
fit the proposed hardware fails loudly) and computes the comparison
cycle cost the timing simulator charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class HardwareBudget:
    """Capacity limits derived from a GPU configuration."""

    addr_table_bytes: int = 128
    inst_table_bytes: int = 128
    pending_compare_entries: int = 32
    comparator_width_bits: int = 256

    @classmethod
    def from_config(cls, config: GpuConfig) -> "HardwareBudget":
        return cls(
            addr_table_bytes=config.addr_table_bytes,
            inst_table_bytes=config.inst_table_bytes,
            pending_compare_entries=config.pending_compare_entries,
            comparator_width_bits=config.comparator_width_bits,
        )

    def max_protected_objects(self, extra_copies: int) -> int:
        """Start-address-table capacity: one 32-bit (4-byte) start
        address per replica copy — 32 objects for detection, 16 for
        detection-and-correction with the paper's 128-byte table."""
        if extra_copies < 1:
            raise ConfigError("extra_copies must be at least 1")
        return self.addr_table_bytes // (4 * extra_copies)

    @property
    def max_tracked_loads(self) -> int:
        """Load-instruction-table capacity (32-bit PC per entry)."""
        return self.inst_table_bytes // 4

    def check(
        self,
        n_protected_objects: int,
        n_protected_loads: int,
        extra_copies: int,
    ) -> None:
        """Raise if the proposed protection exceeds the hardware."""
        max_objects = self.max_protected_objects(extra_copies)
        if n_protected_objects > max_objects:
            raise ConfigError(
                f"{n_protected_objects} protected objects exceed the "
                f"{self.addr_table_bytes}B start-address table "
                f"({max_objects} entries at {extra_copies} copies)"
            )
        if n_protected_loads > self.max_tracked_loads:
            raise ConfigError(
                f"{n_protected_loads} protected load instructions exceed "
                f"the {self.inst_table_bytes}B instruction table "
                f"({self.max_tracked_loads} entries)"
            )

    def compare_cycles(self, nbytes: int, n_way: int = 2) -> int:
        """Cycles the comparator needs for an ``n_way`` comparison of
        ``nbytes`` (it processes comparator_width_bits per cycle; a
        3-way vote needs two passes per chunk)."""
        if nbytes <= 0:
            raise ConfigError("compare size must be positive")
        chunk_bytes = self.comparator_width_bits // 8
        chunks = -(-nbytes // chunk_bytes)
        passes = 1 if n_way == 2 else 2
        return chunks * passes
