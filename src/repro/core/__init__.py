"""The paper's contribution: data-centric partial-replication schemes.

* :mod:`replication` — replica allocation of protected data objects at
  distinct DRAM addresses.
* :mod:`hardware` — the Section IV-C hardware budget: start-address
  table, load-instruction table, comparator, pending-compare queue.
* :mod:`schemes` — :class:`BaselineScheme` (no protection),
  :class:`DetectionScheme` (duplication + lazy bitwise compare +
  terminate-on-mismatch) and :class:`CorrectionScheme` (triplication +
  per-bit majority vote).
* :mod:`manager` — :class:`ReliabilityManager`, the end-to-end API
  tying profiling, protection, fault campaigns and the timing
  simulator together.
"""

from repro.core.hardware import HardwareBudget
from repro.core.manager import ReliabilityManager
from repro.core.replication import ReplicaSet, create_replicas
from repro.core.schemes import (
    BaselineScheme,
    CorrectionScheme,
    DetectionScheme,
    make_scheme,
)

__all__ = [
    "HardwareBudget",
    "ReliabilityManager",
    "ReplicaSet",
    "create_replicas",
    "BaselineScheme",
    "CorrectionScheme",
    "DetectionScheme",
    "make_scheme",
]
