"""The detection and detection-and-correction resilience schemes.

Functionally (this module), a scheme is a *reader*: kernel code pulls
its inputs through ``scheme.read(obj)``.  Reads of unprotected objects
pass straight through to device memory; reads of protected objects
fan out to every replica copy and either

* **detect** — bit-compare the two copies and raise
  :class:`~repro.errors.FaultDetected` on any mismatch (the paper's
  *terminate* signal; the user reruns the application), or
* **correct** — take a per-bit majority over the three copies and
  return the voted data.

Timing behaviour (lazy comparison, stall-for-all-copies, replica
bandwidth) lives in :mod:`repro.sim.ldst`; both layers share the
scheme descriptors defined here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.address_space import (
    BLOCK_BYTES,
    DataObject,
    DeviceMemory,
)
from repro.core.hardware import HardwareBudget
from repro.core.replication import (
    ReplicaSet,
    create_replicas,
    majority_vote,
)
from repro.errors import ConfigError, FaultDetected, UnknownSchemeError


@dataclass
class SchemeStats:
    """Counters a scheme accumulates over one application run."""

    protected_reads: int = 0
    unprotected_reads: int = 0
    comparisons: int = 0
    corrected_bytes: int = 0
    corrected_reads: int = 0


class BaselineScheme:
    """No protection: every read passes straight to memory."""

    scheme_name = "baseline"
    extra_copies = 0

    def __init__(self, memory: DeviceMemory):
        self.memory = memory
        self.protected_names: frozenset[str] = frozenset()
        self.stats = SchemeStats()

    def read(self, obj: DataObject) -> np.ndarray:
        """Plain device-memory read (faults included, unchecked)."""
        self.stats.unprotected_reads += 1
        return self.memory.read_object(obj)


class _ReplicatedScheme:
    """Shared machinery of the two replication schemes."""

    scheme_name = ""
    extra_copies = 0

    def __init__(
        self,
        memory: DeviceMemory,
        protected_objects: list[DataObject],
        budget: HardwareBudget | None = None,
    ):
        if not protected_objects:
            raise ConfigError(
                f"{self.scheme_name}: protect at least one object "
                "(use BaselineScheme for none)"
            )
        self.memory = memory
        budget = budget or HardwareBudget()
        budget.check(
            n_protected_objects=len(protected_objects),
            n_protected_loads=len(protected_objects),  # >=1 PC per object
            extra_copies=self.extra_copies,
        )
        self.budget = budget
        self.replica_sets: dict[str, ReplicaSet] = create_replicas(
            memory, protected_objects, self.extra_copies
        )
        self.protected_names = frozenset(self.replica_sets)
        self.stats = SchemeStats()

    def read(self, obj: DataObject) -> np.ndarray:
        if obj.name not in self.protected_names:
            self.stats.unprotected_reads += 1
            return self.memory.read_object(obj)
        self.stats.protected_reads += 1
        return self._read_protected(self.replica_sets[obj.name])

    def _read_protected(self, replica_set: ReplicaSet) -> np.ndarray:
        raise NotImplementedError

    def _divergence_offsets(self, replica_set: ReplicaSet) \
            -> list[int] | None:
        """Byte offsets at which the copies can possibly differ.

        On a copy-on-write memory whose copies are all still clean
        (never privately written), every copy's raw bytes equal the
        shared clone-time image, so the copies can only differ at
        bytes carrying a fault overlay.  Returns those offsets
        (object-relative, sorted, padding excluded); ``None`` means no
        such guarantee exists and the caller must compare in full.
        """
        dirty = self.memory.cow_dirty_names
        if dirty is None:
            return None
        copies = replica_set.all_copies()
        if any(copy.name in dirty for copy in copies):
            return None
        nbytes = replica_set.primary.nbytes
        suspects: set[int] = set()
        for copy in copies:
            suspects.update(
                off for off in self.memory.overlay_offsets(copy)
                if off < nbytes
            )
        return sorted(suspects)


class DetectionScheme(_ReplicatedScheme):
    """Duplication + bitwise comparison + terminate on mismatch.

    The comparison is *lazy* in the timing model (execution proceeds on
    the first copy's arrival); functionally the mismatch check is
    evaluated before the data is consumed, which is equivalent because
    a detected mismatch terminates the run either way.
    """

    scheme_name = "detection"
    extra_copies = 1

    def _read_protected(self, replica_set: ReplicaSet) -> np.ndarray:
        primary_obj = replica_set.primary
        suspects = self._divergence_offsets(replica_set)
        self.stats.comparisons += 1
        if suspects is not None:
            # Fast path: only overlay-carrying bytes can mismatch, so
            # compare those alone instead of materializing the replica.
            replica_obj = replica_set.replicas[0]
            for off in suspects:
                a = self.memory.read_byte(primary_obj.base_addr + off)
                b = self.memory.read_byte(replica_obj.base_addr + off)
                if a != b:
                    raise FaultDetected(primary_obj.name,
                                        off // BLOCK_BYTES)
            return self.memory.read_object(primary_obj)
        primary = self.memory.read_object(primary_obj)
        replica = self.memory.read_object(replica_set.replicas[0])
        a = primary.view(np.uint8).reshape(-1)
        b = replica.view(np.uint8).reshape(-1)
        mismatch = np.nonzero(a != b)[0]
        if mismatch.size:
            block = int(mismatch[0]) // BLOCK_BYTES
            raise FaultDetected(primary_obj.name, block)
        return primary


class CorrectionScheme(_ReplicatedScheme):
    """Triplication + per-bit majority vote.

    Execution stalls (in the timing model) until all three copies
    arrive; the voted value is what the computation consumes, so any
    fault confined to a single copy is transparently corrected.
    """

    scheme_name = "correction"
    extra_copies = 2

    def _read_protected(self, replica_set: ReplicaSet) -> np.ndarray:
        primary_obj = replica_set.primary
        suspects = self._divergence_offsets(replica_set)
        self.stats.comparisons += 1
        if suspects is not None:
            # Fast path: the copies agree everywhere except (possibly)
            # at overlay bytes, so vote those alone and patch them into
            # the primary in place of a full three-way materialization.
            primary = self.memory.read_object(primary_obj)
            if suspects:
                flat = primary.view(np.uint8).reshape(-1)
                corrected = 0
                for off in suspects:
                    a, b, c = (
                        self.memory.read_byte(copy.base_addr + off)
                        for copy in replica_set.all_copies()
                    )
                    voted = (a & b) | (a & c) | (b & c)
                    if voted != flat[off]:
                        flat[off] = voted
                        corrected += 1
                if corrected:
                    self.stats.corrected_bytes += corrected
                    self.stats.corrected_reads += 1
            return primary
        copies = [
            self.memory.read_object(c).view(np.uint8).reshape(-1)
            for c in replica_set.all_copies()
        ]
        voted, corrected = majority_vote(copies)
        if corrected:
            self.stats.corrected_bytes += corrected
            self.stats.corrected_reads += 1
        return (
            voted.view(primary_obj.dtype)
            .reshape(primary_obj.shape)
            .copy()
        )


class MixedScheme:
    """Per-object mix of detection and correction.

    Composes one :class:`DetectionScheme` over the duplicated objects
    and one :class:`CorrectionScheme` over the triplicated ones,
    sharing a single :class:`SchemeStats` so the campaign's counters
    read like any other scheme's.  The shared start-address table is
    budget-checked as a whole: a detection entry costs one replica
    address, a correction entry two.
    """

    scheme_name = "mixed"
    extra_copies = 0  # varies per object; see the sub-schemes

    def __init__(
        self,
        memory: DeviceMemory,
        detection_objects: list[DataObject],
        correction_objects: list[DataObject],
        budget: HardwareBudget | None = None,
    ):
        if not detection_objects or not correction_objects:
            raise ConfigError(
                "mixed: needs at least one detection and one "
                "correction object (use a uniform scheme otherwise)"
            )
        budget = budget or HardwareBudget()
        n_objects = len(detection_objects) + len(correction_objects)
        table_bytes = 4 * (
            len(detection_objects) + 2 * len(correction_objects)
        )
        if table_bytes > budget.addr_table_bytes:
            raise ConfigError(
                f"mixed protection of {n_objects} objects needs "
                f"{table_bytes}B of start-address table "
                f"(limit {budget.addr_table_bytes}B)"
            )
        budget.check(
            n_protected_objects=1,  # table checked jointly above
            n_protected_loads=n_objects,
            extra_copies=1,
        )
        self.memory = memory
        self.budget = budget
        self.stats = SchemeStats()
        self._detection = DetectionScheme(
            memory, detection_objects, budget
        )
        self._correction = CorrectionScheme(
            memory, correction_objects, budget
        )
        # One stats block for the whole configuration: sub-scheme
        # reads tally into the composite's counters.
        self._detection.stats = self.stats
        self._correction.stats = self.stats
        self.replica_sets: dict[str, ReplicaSet] = {
            **self._detection.replica_sets,
            **self._correction.replica_sets,
        }
        self.protected_names = frozenset(self.replica_sets)
        self._scheme_by_name = {
            name: self._detection
            for name in self._detection.protected_names
        }
        self._scheme_by_name.update(
            (name, self._correction)
            for name in self._correction.protected_names
        )

    def read(self, obj: DataObject) -> np.ndarray:
        """Dispatch the read to the object's own sub-scheme."""
        sub = self._scheme_by_name.get(obj.name)
        if sub is None:
            self.stats.unprotected_reads += 1
            return self.memory.read_object(obj)
        return sub.read(obj)


SCHEME_NAMES = ("baseline", "detection", "correction")


def make_scheme(
    name: str,
    memory: DeviceMemory,
    protected_objects: list[DataObject],
    budget: HardwareBudget | None = None,
):
    """Factory: build a scheme by name.

    ``protected_objects`` may be empty only for ``baseline`` (and a
    non-baseline scheme with an empty list silently degrades to the
    baseline, which is how the Fig 7/9 sweeps express their leftmost
    "0 objects protected" point).
    """
    if name not in SCHEME_NAMES:
        raise UnknownSchemeError(name, SCHEME_NAMES)
    if name == "baseline" or not protected_objects:
        return BaselineScheme(memory)
    if name == "detection":
        return DetectionScheme(memory, protected_objects, budget)
    return CorrectionScheme(memory, protected_objects, budget)


def make_protection(
    memory: DeviceMemory,
    spec,
    budget: HardwareBudget | None = None,
):
    """Factory: build the scheme a :class:`ProtectionSpec` describes.

    Uniform specs build the same objects :func:`make_scheme` would
    (so existing campaign identities are untouched); specs mixing
    detection and correction build a :class:`MixedScheme`.
    """
    if spec.is_baseline:
        return BaselineScheme(memory)
    uniform = spec.uniform_scheme
    objects = [memory.object(name) for name in spec.objects]
    if uniform is not None:
        return make_scheme(uniform, memory, objects, budget)
    schemes = spec.schemes
    detection = [o for o in objects if schemes[o.name] == "detection"]
    correction = [o for o in objects if schemes[o.name] == "correction"]
    return MixedScheme(memory, detection, correction, budget)
