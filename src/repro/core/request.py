"""The unified evaluation request (`EvaluationRequest`).

One typed value describes a reliability evaluation end to end — which
application, what protection (string shorthand or a typed
:class:`~repro.core.protection.ProtectionSpec`), the fault grid,
seeds, adaptive stopping, execution knobs and observability sinks —
and every entry point accepts it:
:meth:`repro.core.manager.ReliabilityManager.evaluate`,
:class:`repro.runtime.session.Session` (via
:meth:`~repro.runtime.session.SweepSpec.from_request`), and
:func:`repro.search.engine.optimize`.

The request separates *identity* (what is measured — part of
:meth:`to_dict`/:meth:`digest`, shared with checkpoint manifests)
from *execution knobs* (``jobs``/``batch``/``max_batch_bytes``) and
*sinks* (``metrics``/``progress``), which never influence results and
therefore never join the digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.protection import ProtectionSpec
from repro.errors import SpecError
from repro.utils.canonical import canonical_digest


@dataclass(frozen=True)
class EvaluationRequest:
    """Everything one reliability evaluation needs, in one value."""

    app: str
    scheme: str = "correction"
    protect: int | str | ProtectionSpec = "hot"
    runs: int = 1000
    n_blocks: int = 1
    n_bits: int = 2
    selection: str = "access-weighted"
    seed: int = 20210621
    scale: str = "default"
    app_seed: int = 1234
    secded: bool = False
    #: CI-driven early stopping margin (``None`` = exhaustive).
    target_margin: float | None = None
    #: Runs per durable work unit when driven through a session.
    chunk_runs: int | None = None
    keep_runs: bool = False
    collect_records: bool = False
    collect_provenance: bool = False
    # -- execution knobs: never part of the request identity ----------
    jobs: int = 1
    batch: int = 1
    max_batch_bytes: int = 256 * 1024 * 1024
    # -- observability sinks: never part of the request identity ------
    metrics: Any = field(default=None, compare=False)
    progress: Any = field(default=None, compare=False)

    def __post_init__(self):
        """Validate the cheap structural invariants."""
        if not self.app:
            raise SpecError("request app must be set")
        if self.runs <= 0:
            raise SpecError("request runs must be positive")
        if self.jobs < 1:
            raise SpecError("request jobs must be >= 1")
        if self.batch < 1:
            raise SpecError("request batch must be >= 1")
        if self.target_margin is not None \
                and not 0.0 < self.target_margin < 1.0:
            raise SpecError("request target_margin must be in (0, 1)")

    @property
    def protection(self) -> ProtectionSpec | None:
        """The typed protection, when the request carries one.

        A :class:`ProtectionSpec` value or an explicit
        ``"obj=scheme,..."`` string resolves here; the contextual
        shorthands (``"none"``/``"hot"``/``"all"``/count) need app
        knowledge and resolve downstream, so this returns ``None``
        for them.
        """
        if isinstance(self.protect, ProtectionSpec):
            return self.protect
        if isinstance(self.protect, str) and "=" in self.protect:
            return ProtectionSpec.parse(self.protect)
        return None

    def to_dict(self) -> dict:
        """Canonical identity document (knobs and sinks excluded).

        Optional experiment dimensions (``target_margin``,
        ``chunk_runs``, ``secded``) join the document only when set,
        following the conditional-identity-key convention the
        checkpoint manifests use.
        """
        protection = self.protection
        doc = {
            "app": self.app,
            "scheme": ("spec" if protection is not None
                       else self.scheme),
            "protect": (protection.to_dict() if protection is not None
                        else self.protect),
            "runs": self.runs,
            "n_blocks": self.n_blocks,
            "n_bits": self.n_bits,
            "selection": self.selection,
            "seed": self.seed,
            "scale": self.scale,
            "app_seed": self.app_seed,
            "keep_runs": self.keep_runs,
            "collect_records": self.collect_records,
            "collect_provenance": self.collect_provenance,
        }
        if self.secded:
            doc["secded"] = True
        if self.target_margin is not None:
            doc["target_margin"] = self.target_margin
        if self.chunk_runs is not None:
            doc["chunk_runs"] = self.chunk_runs
        return doc

    def digest(self) -> str:
        """SHA-256 content address of the identity document."""
        return canonical_digest(self.to_dict())

    def session_config(self):
        """The :class:`~repro.runtime.session.SessionConfig` carrying
        this request's execution knobs (imported lazily to keep the
        core layer free of runtime dependencies)."""
        from repro.runtime.session import SessionConfig

        return SessionConfig(
            jobs=self.jobs,
            batch=self.batch,
            max_batch_bytes=self.max_batch_bytes,
        )
