"""Typed protection configuration (`ProtectionSpec`).

A :class:`ProtectionSpec` names exactly which data objects are
protected and which scheme protects each one — including *mixed*
configurations that duplicate some objects (detection) and triplicate
others (correction).  It is the canonical identity of a protection
configuration: the same type the design-space explorer's
``DesignPoint`` wraps, what ``Campaign(protection=...)`` accepts, and
what ``SweepSpec`` grids may carry in place of the ``protect``
string/int shorthand (which remains valid everywhere as parse sugar).

Identity is canonical-JSON: :meth:`ProtectionSpec.to_dict` sorts the
assignments, so two specs protecting the same objects with the same
schemes share a byte-identical encoding and digest regardless of how
they were spelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SpecError
from repro.utils.canonical import canonical_digest

#: Schemes a single object may be protected with (``baseline`` is the
#: absence of an assignment, never an assignment itself).
PROTECTION_SCHEMES = ("detection", "correction")

#: Replica copies each per-object scheme adds.
EXTRA_COPIES = {"detection": 1, "correction": 2}


@dataclass(frozen=True)
class ProtectionSpec:
    """Which objects are protected, and with which scheme each.

    ``assignments`` is a sorted tuple of ``(object_name, scheme)``
    pairs; an empty tuple is the baseline (no protection).  The
    constructor normalizes ordering and rejects duplicate objects and
    unknown schemes, so equal configurations compare (and digest)
    equal however they were built.
    """

    assignments: tuple[tuple[str, str], ...] = ()

    def __post_init__(self):
        """Normalize ordering and validate the assignment pairs."""
        pairs = tuple(
            (str(name), str(scheme)) for name, scheme in self.assignments
        )
        names = [name for name, _scheme in pairs]
        if len(set(names)) != len(names):
            dupes = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise SpecError(
                f"object(s) assigned more than once: {', '.join(dupes)}"
            )
        for name, scheme in pairs:
            if scheme not in PROTECTION_SCHEMES:
                raise SpecError(
                    f"unknown per-object scheme {scheme!r} for "
                    f"{name!r} (choose from "
                    f"{', '.join(PROTECTION_SCHEMES)})"
                )
        object.__setattr__(self, "assignments", tuple(sorted(pairs)))

    # -- constructors --------------------------------------------------
    @classmethod
    def baseline(cls) -> "ProtectionSpec":
        """The no-protection configuration."""
        return cls(())

    @classmethod
    def uniform(
        cls, scheme: str, names: Iterable[str]
    ) -> "ProtectionSpec":
        """Protect every object in ``names`` with one ``scheme``.

        An empty ``names`` degrades to the baseline, mirroring
        :func:`repro.core.schemes.make_scheme`.
        """
        names = tuple(names)
        if scheme == "baseline" or not names:
            return cls.baseline()
        return cls(tuple((name, scheme) for name in names))

    @classmethod
    def parse(cls, text: str) -> "ProtectionSpec":
        """Parse the explicit string form.

        ``"none"`` is the baseline; otherwise a comma-separated list
        of ``object=scheme`` pairs, e.g.
        ``"mat_values=correction,vec_x=detection"``.  The contextual
        shorthands (``"hot"``, ``"all"``, an object count) need app
        knowledge and are resolved by
        :meth:`repro.core.manager.ReliabilityManager.protection_spec`.
        """
        text = text.strip()
        if text in ("", "none"):
            return cls.baseline()
        pairs = []
        for part in text.split(","):
            name, sep, scheme = part.partition("=")
            if not sep or not name.strip() or not scheme.strip():
                raise SpecError(
                    f"bad protection assignment {part!r} (expected "
                    "'object=scheme')"
                )
            pairs.append((name.strip(), scheme.strip()))
        return cls(tuple(pairs))

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProtectionSpec":
        """Rebuild a spec from its :meth:`to_dict` image."""
        try:
            assignments = data["assignments"]
        except (KeyError, TypeError):
            raise SpecError(
                f"not a protection-spec image: {data!r}"
            ) from None
        return cls(tuple(sorted(
            (name, scheme) for name, scheme in assignments.items()
        )))

    # -- identity ------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-ready image (sorted assignment map)."""
        return {"assignments": dict(self.assignments)}

    def digest(self) -> str:
        """Content digest of the canonical encoding."""
        return canonical_digest(self.to_dict())

    def to_string(self) -> str:
        """The explicit string form :meth:`parse` accepts."""
        if not self.assignments:
            return "none"
        return ",".join(
            f"{name}={scheme}" for name, scheme in self.assignments
        )

    # -- structure -----------------------------------------------------
    @property
    def objects(self) -> tuple[str, ...]:
        """Protected object names, sorted."""
        return tuple(name for name, _scheme in self.assignments)

    @property
    def schemes(self) -> dict[str, str]:
        """Object name -> scheme map."""
        return dict(self.assignments)

    @property
    def is_baseline(self) -> bool:
        """Whether nothing is protected."""
        return not self.assignments

    @property
    def is_mixed(self) -> bool:
        """Whether the spec mixes detection and correction objects."""
        schemes = {scheme for _name, scheme in self.assignments}
        return len(schemes) > 1

    @property
    def uniform_scheme(self) -> str | None:
        """The single scheme when uniform (baseline included), else
        ``None`` for mixed configurations."""
        schemes = {scheme for _name, scheme in self.assignments}
        if not schemes:
            return "baseline"
        if len(schemes) == 1:
            return next(iter(schemes))
        return None

    @property
    def scheme_label(self) -> str:
        """Display/grouping label: the uniform scheme or ``"mixed"``."""
        return self.uniform_scheme or "mixed"

    def scheme_for(self, name: str) -> str:
        """The scheme protecting ``name`` (``"baseline"`` if none)."""
        return self.schemes.get(name, "baseline")

    def extra_copies_for(self, name: str) -> int:
        """Replica copies the spec allocates for ``name``."""
        return EXTRA_COPIES.get(self.scheme_for(name), 0)

    def replica_bytes(self, memory) -> int:
        """Replica memory footprint on ``memory`` (block-granular).

        Pure address arithmetic over the allocation map — the spec
        need never be executed to know its memory cost, which is what
        makes the footprint a free objective for the design-space
        search.
        """
        from repro.arch.address_space import BLOCK_BYTES

        total = 0
        for name, _scheme in self.assignments:
            obj = memory.object(name)
            total += obj.n_blocks * BLOCK_BYTES \
                * self.extra_copies_for(name)
        return total
