"""Replica management: duplicate/triplicate protected data objects.

Each copy lives at a distinct DRAM address (a fresh allocation), so in
the timing model replica transactions hash to different L2 slices and
DRAM banks, and in the fault model a fault in one copy leaves the
others intact — the property the majority vote relies on.

Replicas are created at protection time from the pristine data, before
any fault is injected, mirroring the paper's flow where the runtime
stores the copies at application load time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.address_space import (
    BLOCK_BYTES,
    DataObject,
    DeviceMemory,
)
from repro.errors import ConfigError


def replica_name(object_name: str, copy_index: int) -> str:
    """Device-memory name of the ``copy_index``-th replica (1-based)."""
    return f"{object_name}#copy{copy_index}"


@dataclass(frozen=True)
class ReplicaSet:
    """The primary object plus its replica allocations."""

    primary: DataObject
    replicas: tuple[DataObject, ...]

    @property
    def n_copies(self) -> int:
        """Total copies including the primary."""
        return 1 + len(self.replicas)

    def all_copies(self) -> tuple[DataObject, ...]:
        """Primary first, then the replicas."""
        return (self.primary, *self.replicas)


#: Channel x bank mapping period (6 channels x 16 banks in Table I);
#: replica bases are colored modulo this so copy traffic spreads over
#: different channels and banks than the primary's.
_MAPPING_PERIOD_BLOCKS = 96
#: Block-index shift per copy; 7 is coprime with both 6 and 16, so
#: copy k lands on a different channel *and* a different bank.
_COLOR_STRIDE_BLOCKS = 7


def create_replicas(
    memory: DeviceMemory,
    objects: list[DataObject],
    extra_copies: int,
    populate: bool = True,
) -> dict[str, ReplicaSet]:
    """Allocate and populate ``extra_copies`` replicas per object.

    Detection uses 1 extra copy (duplication); correction uses 2
    (triplication).  Only read-only objects may be protected — the
    paper's schemes never replicate writable data, whose copies would
    need coherent updates.

    Replica base addresses are *colored*: padded so that copy ``k`` of
    a block maps to a different memory channel and DRAM bank than the
    primary.  Without this, a copy offset that is a multiple of the
    channel x bank interleaving period would put every copy of a block
    in the same bank (different row), serializing the copy fetches and
    destroying row locality.

    Replicas already present in ``memory`` (same name) are reused
    as-is instead of re-allocated: a campaign prepares the replica
    image once on a base memory and copy-on-write clones it per run,
    so rebuilding the scheme on a clone must bind to the existing
    allocations rather than grow the address space.

    ``populate=False`` runs the allocator dry: replica objects are
    allocated (and colored) but their data is never copied in.  The
    timing model's :func:`~repro.sim.simulator.build_protection` only
    needs the address offsets, so it skips the population writes.
    """
    if extra_copies < 1:
        raise ConfigError("replication needs at least one extra copy")
    replica_sets: dict[str, ReplicaSet] = {}
    for obj in objects:
        if not obj.read_only:
            raise ConfigError(
                f"cannot protect writable object {obj.name!r}: the "
                "schemes replicate read-only input data only"
            )
        pristine = None
        primary_block = obj.base_addr // BLOCK_BYTES
        replicas = []
        for copy_idx in range(1, extra_copies + 1):
            name = replica_name(obj.name, copy_idx)
            if memory.has_object(name):
                replicas.append(memory.object(name))
                continue
            if populate and pristine is None:
                pristine = memory.read_pristine(obj)
            target_phase = (
                primary_block + copy_idx * _COLOR_STRIDE_BLOCKS
            ) % _MAPPING_PERIOD_BLOCKS
            current_block = memory.bytes_allocated // BLOCK_BYTES
            pad = (target_phase - current_block) % _MAPPING_PERIOD_BLOCKS
            memory.reserve_blocks(pad)
            replica = memory.alloc(
                name,
                obj.shape,
                obj.dtype,
                read_only=True,
            )
            if populate:
                memory.write_object(replica, pristine)
            replicas.append(replica)
        replica_sets[obj.name] = ReplicaSet(obj, tuple(replicas))
    return replica_sets


def majority_vote(
    copies: list[np.ndarray],
) -> tuple[np.ndarray, int]:
    """Per-bit majority over three byte arrays.

    Returns (voted bytes, number of corrected bytes in the primary).
    ``maj = (a & b) | (a & c) | (b & c)`` computed bytewise is exactly
    a per-bit 2-of-3 vote — the paper's correction hardware.
    """
    if len(copies) != 3:
        raise ConfigError(
            f"majority vote requires exactly 3 copies, got {len(copies)}"
        )
    a, b, c = (np.asarray(copy, dtype=np.uint8) for copy in copies)
    if not (a.shape == b.shape == c.shape):
        raise ConfigError("replica size mismatch in majority vote")
    voted = (a & b) | (a & c) | (b & c)
    corrected = int(np.count_nonzero(voted != a))
    return voted, corrected
