"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``profile``  — access-pattern analysis of one application (Fig 3/4,
  Table III statistics, automated hot-object discovery).
* ``campaign`` — a fault-injection campaign under a chosen scheme and
  protection level (Figs 6/9 cells).
* ``perf``     — timing simulation of a protection configuration
  (Fig 7 bars).
* ``tradeoff`` — the Section V-C sweep across protection levels.
* ``sweep``    — a resumable grid of campaign cells (apps × schemes ×
  protection levels) with durable chunk-level checkpoints
  (``--checkpoint-dir`` / ``--resume``).
* ``optimize`` — protection design-space exploration: search the
  per-object scheme assignments with a pluggable strategy
  (exhaustive / greedy / evolutionary / random), extract the Pareto
  front over (SDC rate, performance overhead, replica footprint),
  and solve "best SDC reduction under an overhead/memory budget"
  (``--budget-overhead`` / ``--budget-memory``); checkpointed and
  resumable like ``sweep``, with a byte-deterministic ``--trail``
  decision log.
* ``trace``    — cycle-level trace of one timing run, exported as
  Perfetto/Chrome ``trace_events`` JSON with per-object attribution.
* ``export``   — write every exhibit's data for one application to
  CSV files (re-plottable with any tool).
* ``stats``    — validate and summarize a telemetry JSONL file
  (``-`` reads the JSONL from stdin).
* ``vuln``     — per-object vulnerability attribution from a
  fault-provenance JSONL file (DVF-style profiles; ``-`` reads
  from stdin).
* ``db``       — the results warehouse: ``db ingest`` loads
  telemetry/provenance/decision/session/bench files into a SQLite
  store keyed by content-addressed cell digests (re-ingest is a
  no-op), ``db cells`` / ``db query`` inspect it, ``db export``
  reconstructs a cell's canonical JSONL byte-identically.
* ``report``   — render a warehouse as one self-contained,
  deterministic static HTML dashboard.
* ``apps``     — list the available applications.

``campaign`` and ``tradeoff`` accept ``--telemetry PATH`` to stream
one per-run :class:`~repro.obs.records.RunRecord` JSON line per
fault-injection run; the file is byte-identical for any ``--jobs``
setting and is what ``repro stats`` consumes.  ``campaign`` also
accepts ``--provenance PATH`` to stream one
:class:`~repro.obs.provenance.ProvenanceRecord` JSON line per run
(fault site, propagation story, masking/detection cause) — the input
of ``repro vuln`` — with the same byte-identity guarantee at any
``--jobs``/``--batch``.  ``campaign`` and ``perf`` accept
``--trace PATH`` to additionally capture the golden (fault-free)
timing run as a trace file; for ``campaign`` the export also carries
the campaign-lifecycle track (campaign/chunk spans, per-run outcome
instants, adaptive stop decisions).

``campaign`` and ``sweep`` accept ``--target-margin M`` for adaptive
statistical campaigns: runs commit in fixed chunks and stop at the
first chunk boundary whose Wilson CI margin on the SDC rate reaches
``M``, with ``--runs`` as the budget.  Stop decisions are made only
at chunk boundaries in run-index order, so the committed results and
telemetry stay byte-identical at any ``--jobs``/``--batch``;
``campaign --decisions PATH`` records the decision trail as JSONL.

``campaign`` and ``sweep`` accept ``--progress`` for a live one-line
TTY progress display (runs done, rate, ETA, and — for adaptive or
sweep cells — the current Wilson CI margin), refreshed at chunk
boundaries.  Progress is purely observational: results and telemetry
are byte-identical with or without it, and the flag is rejected
nowhere — on a pipe it degrades to one line per event.

Output honors the global ``-q/--quiet`` and ``-v/--verbose`` flags:
result tables always print, progress lines are silenced by ``-q``,
and diagnostics appear on stderr under ``-v``.

Exit codes map the :mod:`repro.errors` hierarchy so schedulers can
react without parsing stderr: ``0`` success, ``2`` usage errors,
``3`` unknown application or scheme, ``4`` invalid spec or
configuration, ``5`` checkpoint-store failures, ``6`` session
failures (retries exhausted), ``7`` results-warehouse failures
(corrupt input, schema mismatch, unknown digest), ``75``
interrupted-but-checkpointed (rerun ``sweep``/``optimize`` with
``--resume`` to continue), ``1`` any other library error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import campaign_table, performance_table
from repro.core.manager import ReliabilityManager
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.utils.tables import TextTable

log = get_logger("cli")


def _manager(args) -> ReliabilityManager:
    app = create_app(args.app, scale=args.scale, seed=args.seed)
    return ReliabilityManager(app, jobs=getattr(args, "jobs", 1))


def _protect_level(value: str) -> int | str:
    if value in ("none", "hot", "all"):
        return value
    try:
        return int(value)
    except ValueError:
        from repro.errors import SpecError

        raise SpecError(
            f"protection level {value!r} must be none, hot, all, or "
            "an object count"
        ) from None


def _progress_sink(args):
    """A :class:`~repro.obs.progress.TtyProgress` for ``--progress``.

    Returns ``None`` unless the flag was given (and not silenced by
    ``-q``), so drivers take the exact pre-progress code path by
    default — the campaign engine never sees a disabled sink.
    """
    if not getattr(args, "progress", False) or args.quiet:
        return None
    from repro.obs.progress import TtyProgress

    return TtyProgress()


def _cmd_apps(_args) -> int:
    log.result("Resilience-study applications (Table II):")
    for name in APPLICATIONS:
        log.result(f"  {name}")
    log.result("Flat-profile applications (Fig 3(g)-(h)):")
    for name in FLAT_APPLICATIONS:
        log.result(f"  {name}")
    return 0


def _cmd_profile(args) -> int:
    manager = _manager(args)
    profile = manager.profile
    t3 = manager.table3()
    discovery = manager.discover_hot_objects()
    log.result(
        f"{manager.app.name}: {profile.total_reads} read transactions "
        f"over {profile.n_blocks} blocks")
    log.result(f"  max/min per-block access ratio: "
               f"{profile.max_min_ratio():.1f}x")
    log.result(f"  hot blocks: {len(manager.hot_blocks.hot_addrs)}")
    log.result(f"  hot objects (declared): {t3.hot_objects}")
    log.result(f"  hot objects (discovered): {discovery.hot_objects}")
    log.result(f"  hot footprint: {t3.hot_footprint_pct:.3f}% "
               "of app memory")
    log.result(f"  hot accesses:  {t3.hot_access_pct:.2f}% of all reads")
    return 0


def _write_golden_trace(
    manager: ReliabilityManager,
    scheme: str,
    protect: int | str,
    path: str,
    args,
    extra_events: list[dict] | None = None,
) -> None:
    """Capture the golden (fault-free) timing run as a trace file.

    The trace is recorded parent-side as one single-threaded timing
    simulation, so the output is byte-identical for any ``--jobs``
    setting — the campaign workers never touch the trace session.
    ``extra_events`` (e.g. campaign-lifecycle spans) are appended to
    the export on their own Perfetto track.
    """
    from repro.obs.perfetto import write_chrome_trace
    from repro.obs.trace import TraceConfig, TraceSession

    tracer = TraceSession(TraceConfig(
        max_events=args.trace_max_events,
        interval_cycles=args.trace_interval,
    ))
    log.debug("capturing golden-run trace (%s, protect=%s)",
              scheme, protect)
    manager.simulate_performance(scheme, protect, tracer=tracer)
    n = write_chrome_trace(
        tracer, path, label=f"{manager.app.name} {scheme} golden run",
        extra_events=extra_events)
    log.info(f"wrote {n} trace event(s) to {path}")


def _cmd_campaign(args) -> int:
    from repro.errors import SpecError

    if args.decisions is not None and args.target_margin is None:
        raise SpecError("--decisions requires --target-margin")
    manager = _manager(args)
    protect = _protect_level(args.protect)
    kwargs = dict(
        scheme=args.scheme,
        protect=protect,
        runs=args.runs,
        n_blocks=args.blocks,
        n_bits=args.bits,
        selection=args.selection,
        collect_records=args.telemetry is not None,
        collect_provenance=args.provenance is not None,
        batch=args.batch,
        max_batch_bytes=args.max_batch_bytes,
    )
    adaptive = None
    progress = _progress_sink(args)
    try:
        if args.target_margin is not None:
            adaptive = manager.evaluate_adaptive(
                target_margin=args.target_margin, progress=progress,
                **kwargs)
            result = adaptive.result
        else:
            result = manager.evaluate(progress=progress, **kwargs)
    finally:
        if progress is not None:
            progress.close()
    log.result(campaign_table([result]).render())
    log.result("")
    log.result(f"SDC rate: {result.sdc_interval()}")
    if adaptive is not None:
        log.result(adaptive.summary())
        if args.decisions is not None:
            from repro.obs.records import write_decisions

            n = write_decisions(args.decisions, adaptive.decisions)
            log.info(f"wrote {n} stop decision(s) to {args.decisions}")
    if args.telemetry is not None:
        from repro.obs.records import TelemetryWriter

        with TelemetryWriter(args.telemetry) as writer:
            n = writer.write_result(result)
        log.info(f"wrote {n} run record(s) to {args.telemetry}")
    if args.provenance is not None:
        from repro.obs.provenance import ProvenanceWriter

        with ProvenanceWriter(args.provenance) as writer:
            n = writer.write_result(result)
        log.info(f"wrote {n} provenance record(s) to "
                 f"{args.provenance}")
    if args.trace is not None:
        from repro.obs.perfetto import campaign_lifecycle_events

        lifecycle = campaign_lifecycle_events(
            result,
            decisions=adaptive.decisions if adaptive is not None
            else None,
        )
        _write_golden_trace(manager, args.scheme, protect,
                            args.trace, args, extra_events=lifecycle)
    return 0


def _cmd_perf(args) -> int:
    manager = _manager(args)
    baseline = manager.simulate_performance("baseline", "none")
    reports = [baseline]
    if args.scheme != "baseline":
        protect = _protect_level(args.protect)
        reports.append(manager.simulate_performance(args.scheme, protect))
    else:
        protect = "none"
    log.result(performance_table(reports, baseline).render())
    if args.trace is not None:
        _write_golden_trace(manager, args.scheme, protect,
                            args.trace, args)
    return 0


def _cmd_tradeoff(args) -> int:
    from repro.analysis.tradeoff import knee_point, tradeoff_curve

    manager = _manager(args)
    if args.telemetry is not None:
        from repro.obs.records import TelemetryWriter

        with TelemetryWriter(args.telemetry) as writer:
            points = tradeoff_curve(
                manager, scheme=args.scheme, runs=args.runs,
                n_blocks=args.blocks, n_bits=args.bits,
                telemetry=writer,
            )
        log.info(f"wrote {writer.n_written} run record(s) to "
                 f"{args.telemetry}")
    else:
        points = tradeoff_curve(
            manager, scheme=args.scheme, runs=args.runs,
            n_blocks=args.blocks, n_bits=args.bits,
        )
    table = TextTable(
        ["protected", "objects", "norm-time", "norm-missed", "SDC",
         "detected", "corrected"],
        float_format="{:.3f}",
    )
    for p in points:
        table.add_row([
            p.n_protected, ",".join(p.protected_names) or "-",
            p.slowdown, p.missed_accesses_ratio, p.sdc_count,
            p.detected_count, p.corrected_count,
        ])
    log.result(table.render())
    knee = knee_point(points)
    log.result(
        f"\nsweet spot: protect {knee.n_protected} object(s) "
        f"({','.join(knee.protected_names) or 'none'}) -> "
        f"{knee.sdc_count} SDCs at {100 * (knee.slowdown - 1):+.1f}% "
        "time")
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweep import (
        sdc_reduction_by_app,
        summarize_sweep,
        sweep_table,
    )
    from repro.errors import SpecError
    from repro.obs.session import SessionLog
    from repro.runtime.session import Session, SessionConfig, SweepSpec

    if args.resume and args.checkpoint_dir is None:
        raise SpecError("--resume requires --checkpoint-dir")
    spec = SweepSpec(
        apps=tuple(args.apps),
        schemes=tuple(args.schemes),
        protects=tuple(_protect_level(p) for p in args.protects),
        runs=args.runs,
        n_blocks=args.blocks,
        n_bits=args.bits,
        seed=args.seed,
        selection=args.selection,
        scale=args.scale,
        app_seed=args.app_seed,
        chunk_runs=args.chunk_runs,
        collect_records=args.telemetry is not None,
        target_margin=args.target_margin,
    )
    config = SessionConfig(
        jobs=args.jobs,
        max_retries=args.max_retries,
        chunk_timeout_s=args.chunk_timeout,
        stop_after_chunks=args.stop_after_chunks,
    )
    events = (SessionLog(args.session_log)
              if args.session_log is not None else None)
    progress = _progress_sink(args)
    session = Session(spec, store=args.checkpoint_dir, config=config,
                      events=events, progress=progress)
    log.info(f"sweep: {len(spec.cells())} cell(s) x {spec.runs} runs, "
             f"jobs={args.jobs}"
             + (f", checkpoints in {args.checkpoint_dir}"
                if args.checkpoint_dir else ""))
    try:
        sweep = session.run(resume=args.resume)
    finally:
        if progress is not None:
            progress.close()
        if events is not None:
            events.close()
    rows = summarize_sweep(sweep)
    log.result(sweep_table(rows).render())
    reductions = sdc_reduction_by_app(rows)
    for app in sorted(reductions):
        for arm, pct in sorted(reductions[app].items()):
            log.result(f"{app}: {arm} reduces SDCs by {pct:.1f}% "
                       "vs baseline")
    if args.telemetry is not None:
        n = sweep.write_telemetry(args.telemetry)
        log.info(f"wrote {n} run record(s) to {args.telemetry}")
    if args.out is not None:
        from repro.utils.canonical import canonical_json

        with open(args.out, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(canonical_json(sweep.to_dict()) + "\n")
        log.info(f"wrote merged sweep results to {args.out}")
    return 0


def _cmd_optimize(args) -> int:
    from repro.errors import SpecError
    from repro.search import optimize

    if args.resume and args.checkpoint_dir is None:
        raise SpecError("--resume requires --checkpoint-dir")
    if args.json:
        # --json promises machine-readable stdout; round-progress info
        # lines would corrupt it.
        configure_logging(quiet=True)
    progress = _progress_sink(args)
    try:
        result = optimize(
            app=args.app,
            strategy=args.strategy,
            objects=args.objects,
            runs=args.runs,
            n_blocks=args.blocks,
            n_bits=args.bits,
            selection=args.selection,
            seed=args.seed,
            search_seed=args.search_seed,
            scale=args.scale,
            app_seed=args.app_seed,
            population=args.population,
            generations=args.generations,
            max_evals=args.max_evals,
            chunk_runs=args.chunk_runs,
            store=args.checkpoint_dir,
            resume=args.resume,
            jobs=args.jobs,
            batch=args.batch,
            stop_after_chunks=args.stop_after_chunks,
            trail=args.trail,
            progress=progress,
            max_overhead=args.budget_overhead,
            max_replica_bytes=args.budget_memory,
        )
    finally:
        if progress is not None:
            progress.close()
    if args.json:
        from repro.utils.canonical import canonical_json

        log.result(canonical_json(result.to_dict()))
        return 0
    front = {e.digest for e in result.front}
    table = TextTable(
        ["configuration", "runs", "sdc", "sdc%", "overhead%",
         "replica-bytes", "front"],
        float_format="{:.2f}",
    )
    for e in result.evaluations:
        table.add_row([
            e.point.label, e.runs, e.sdc_count, 100.0 * e.sdc_rate,
            100.0 * e.overhead, e.replica_bytes,
            "*" if e.digest in front else "",
        ])
    log.result(f"{result.app}: {len(result.evaluations)} "
               f"configuration(s) evaluated in {result.rounds} "
               f"round(s) ({result.strategy}), front size "
               f"{len(result.front)}")
    log.result(table.render())
    if args.budget_overhead is not None or args.budget_memory is not None:
        if result.best is None:
            log.result("budget: no front configuration fits")
        else:
            b = result.best
            log.result(
                f"budget pick: {b.point.label} — removes "
                f"{result.sdc_reduction(b):.1f}% of baseline SDCs at "
                f"{100.0 * b.overhead:.2f}% overhead, "
                f"{b.replica_bytes} replica bytes"
            )
    if args.out is not None:
        from repro.utils.canonical import canonical_json

        with open(args.out, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(canonical_json(result.to_dict()) + "\n")
        log.info(f"wrote search results to {args.out}")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.perfetto import validate_trace_file, write_chrome_trace
    from repro.obs.trace import TraceConfig, TraceSession

    if args.app is None:
        args.app = args.app_opt
    if args.app is None:
        log.error("trace: an application is required "
                  "(positional or --app)")
        return 2
    manager = _manager(args)
    protect = _protect_level(args.protect)
    tracer = TraceSession(TraceConfig(
        max_events=args.max_events,
        interval_cycles=args.interval,
        sample_rate=args.sample_rate,
        seed=args.sample_seed,
    ))
    report = manager.simulate_performance(args.scheme, protect,
                                          tracer=tracer)
    out = args.out or f"{args.app}.trace.json"
    n = write_chrome_trace(
        tracer, out, label=f"{manager.app.name} {args.scheme}")
    validate_trace_file(out)
    log.info(f"wrote {n} trace event(s) to {out} "
             f"(emitted {tracer.emitted}, dropped {tracer.dropped}, "
             f"{len(tracer.samples)} interval samples)")
    log.info("load at https://ui.perfetto.dev (1 us = 1 core cycle)")
    log.result(f"{manager.app.name}: {report.cycles} cycles, "
               f"{report.instructions} instructions "
               f"({args.scheme}, protect={args.protect})")
    summary = tracer.object_summary()
    if summary:
        table = TextTable(
            ["object", "loads", "l1-miss", "stall-cyc", "l2-acc",
             "dram-rd", "read-bytes"],
        )
        for name, stats in summary.items():
            table.add_row([
                name, stats["loads"], stats["l1_misses"],
                stats["stall_cycles"], stats["l2_accesses"],
                stats["dram_reads"], stats["read_bytes"],
            ])
        log.result(table.render())
    if args.objects_out is not None:
        import json

        with open(args.objects_out, "w", encoding="utf-8") as fh:
            json.dump({"app": manager.app.name,
                       "scheme": args.scheme,
                       "objects": summary}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        log.info(f"wrote object-attribution summary to "
                 f"{args.objects_out}")
    return 0


def _cmd_stats(args) -> int:
    from repro.errors import ReproError
    from repro.obs.summary import summarize_file, summarize_records

    try:
        if args.file == "-":
            from repro.obs.records import (
                iter_validated_lines,
                validate_record,
            )

            records = list(iter_validated_lines(
                sys.stdin, validate_record, label="<stdin>"))
            summary = summarize_records("<stdin>", records)
        else:
            summary = summarize_file(args.file)
    except FileNotFoundError:
        log.error(f"stats: telemetry file not found: {args.file}")
        return 2
    except IsADirectoryError:
        log.error(f"stats: {args.file} is a directory, not a "
                  "telemetry file")
        return 2
    except ReproError as exc:
        log.error(f"stats: {exc}")
        return 2
    if args.json:
        from repro.utils.canonical import canonical_json

        log.result(canonical_json(summary.to_dict()))
    else:
        log.result(summary.render())
    return 0


def _cmd_vuln(args) -> int:
    from repro.analysis.report import vulnerability_table
    from repro.errors import ReproError
    from repro.obs.provenance import (
        read_provenance,
        top_sdc_objects,
        validate_provenance,
        vulnerability_profiles,
    )

    try:
        if args.file == "-":
            from repro.obs.records import iter_validated_lines

            records = list(iter_validated_lines(
                sys.stdin, validate_provenance, label="<stdin>"))
        else:
            records = read_provenance(args.file)
    except FileNotFoundError:
        log.error(f"vuln: provenance file not found: {args.file}")
        return 2
    except IsADirectoryError:
        log.error(f"vuln: {args.file} is a directory, not a "
                  "provenance file")
        return 2
    except ReproError as exc:
        log.error(f"vuln: {exc}")
        return 2
    profiles = vulnerability_profiles(records)
    if args.top is not None:
        profiles = top_sdc_objects(profiles, args.top)
    if args.json:
        from repro.utils.canonical import canonical_json

        log.result(canonical_json(
            [profile.to_dict() for profile in profiles]))
        return 0
    log.result(f"{args.file}: {len(records)} provenance record(s), "
               f"{len(profiles)} object profile(s)")
    log.result(vulnerability_table(profiles).render())
    ranked = top_sdc_objects(profiles)
    worst = [p for p in ranked if p.sdc_count > 0][:3]
    if worst:
        log.result(
            "most vulnerable: "
            + ", ".join(
                f"{p.app}/{p.scheme}:{p.object} "
                f"({p.sdc_count} SDC, {100 * p.sdc_rate:.1f}%)"
                for p in worst
            )
        )
    return 0


def _cmd_db_ingest(args) -> int:
    from repro.obs.store import ResultsStore, ingest_files

    with ResultsStore(args.store) as store:
        receipts = ingest_files(store, args.files, kind=args.kind)
    new = sum(1 for r in receipts if not r["deduped"])
    for receipt in receipts:
        state = "deduped" if receipt["deduped"] else "ingested"
        log.info(f"{state} {receipt['kind']} cell "
                 f"{receipt['digest'][:12]} ({receipt['label']}, "
                 f"{receipt['rows']} row(s))")
    log.result(f"{args.store}: {new} new cell(s), "
               f"{len(receipts) - new} deduplicated")
    return 0


def _cmd_db_cells(args) -> int:
    from repro.obs.store import ResultsStore

    with ResultsStore(args.store) as store:
        cells = store.cells()
    if args.json:
        from repro.utils.canonical import canonical_json

        log.result(canonical_json(cells))
        return 0
    table = TextTable(["digest", "kind", "label", "rows"])
    for cell in cells:
        table.add_row([cell["digest"][:12], cell["kind"],
                       cell["label"], cell["rows"]])
    log.result(table.render())
    return 0


def _cmd_db_query(args) -> int:
    from repro.obs.store import ResultsStore

    with ResultsStore(args.store) as store:
        summaries = store.query(app=args.app, scheme=args.scheme)
    if args.json:
        from repro.utils.canonical import canonical_json

        log.result(canonical_json(summaries))
        return 0
    table = TextTable(
        ["app", "scheme", "selection", "faults", "runs", "SDC",
         "SDC rate", "CI margin"],
        float_format="{:.4f}",
    )
    for cell in summaries:
        ci = cell["sdc_interval"]
        table.add_row([
            cell["app"], cell["scheme"], cell["selection"],
            f'{cell["n_blocks"]}x{cell["n_bits"]}', cell["runs"],
            cell["outcomes"].get("sdc", 0), ci["proportion"],
            ci["margin"],
        ])
    log.result(table.render())
    return 0


def _cmd_db_export(args) -> int:
    from repro.obs.store import ResultsStore

    with ResultsStore(args.store) as store:
        text = store.export(args.digest)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
        log.info(f"wrote {text.count(chr(10))} line(s) to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.html import write_html_report
    from repro.obs.store import ResultsStore

    with ResultsStore(args.store) as store:
        n = write_html_report(store, args.out)
    log.result(f"wrote {n} byte(s) of report to {args.out}")
    return 0


def _cmd_export(args) -> int:
    from repro.analysis.export import export_all

    manager = _manager(args)
    paths = export_all(manager, args.out, runs=args.runs)
    for path in paths:
        log.result(f"wrote {path}")
    return 0


def _add_common(parser: argparse.ArgumentParser,
                app_optional: bool = False) -> None:
    if app_optional:
        parser.add_argument("app", nargs="?", default=None,
                            help="application name, e.g. P-BICG")
    else:
        parser.add_argument("app", help="application name, e.g. P-BICG")
    parser.add_argument("--scale", default="default",
                        choices=("default", "small"))
    parser.add_argument("--seed", type=int, default=1234)


def _add_trace_capture(parser: argparse.ArgumentParser) -> None:
    """The golden-run ``--trace`` capture knobs (campaign / perf)."""
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="also capture the golden (fault-free) "
                             "timing run as Perfetto trace_events "
                             "JSON at PATH")
    parser.add_argument("--trace-interval", type=int, default=1024,
                        help="time-series sampling period in cycles "
                             "(default 1024)")
    parser.add_argument("--trace-max-events", type=int, default=65536,
                        help="trace ring-buffer capacity "
                             "(default 65536)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-centric GPU reliability management (DSN'21) "
                    "reproduction",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress output (results and "
                             "errors still print)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print diagnostics to stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list applications").set_defaults(
        func=_cmd_apps)

    p = sub.add_parser("profile", help="access-pattern analysis")
    _add_common(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("campaign", help="fault-injection campaign")
    _add_common(p)
    p.add_argument("--scheme", default="baseline",
                   choices=("baseline", "detection", "correction"))
    p.add_argument("--protect", default="hot",
                   help="none | hot | all | <N objects>")
    p.add_argument("--runs", type=int, default=200)
    p.add_argument("--blocks", type=int, default=1)
    p.add_argument("--bits", type=int, default=2)
    p.add_argument("--selection", default="access-weighted",
                   choices=("access-weighted", "miss-weighted",
                            "uniform", "hot", "rest", "stratified"))
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the campaign (default 1)")
    p.add_argument("--batch", type=int, default=1,
                   help="runs propagated per batched sweep (default 1 "
                        "= scalar); never affects results")
    p.add_argument("--target-margin", type=float, default=None,
                   metavar="M",
                   help="stop early once the Wilson 95%% CI on the SDC "
                        "rate reaches margin M (--runs becomes the "
                        "budget); the committed result is identical "
                        "at any --jobs/--batch")
    p.add_argument("--decisions", metavar="PATH", default=None,
                   help="write the adaptive stop-decision trail as "
                        "JSONL to PATH (requires --target-margin)")
    p.add_argument("--max-batch-bytes", type=int,
                   default=256 * 1024 * 1024,
                   help="memory ceiling that clamps the effective "
                        "batch size (default 256 MiB)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write one JSONL run record per fault-injection"
                        " run to PATH")
    p.add_argument("--provenance", metavar="PATH", default=None,
                   help="write one JSONL fault-provenance record per "
                        "run to PATH (byte-identical at any "
                        "--jobs/--batch); feed it to `repro vuln`")
    p.add_argument("--progress", action="store_true",
                   help="live one-line progress on stderr, refreshed "
                        "at chunk boundaries; never affects results")
    _add_trace_capture(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("perf", help="timing simulation")
    _add_common(p)
    p.add_argument("--scheme", default="detection",
                   choices=("baseline", "detection", "correction"))
    p.add_argument("--protect", default="hot")
    _add_trace_capture(p)
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser("tradeoff", help="Section V-C sweep")
    _add_common(p)
    p.add_argument("--scheme", default="correction",
                   choices=("detection", "correction"))
    p.add_argument("--runs", type=int, default=100)
    p.add_argument("--blocks", type=int, default=1)
    p.add_argument("--bits", type=int, default=2)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per campaign (default 1)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write the whole sweep's run records to one "
                        "JSONL file at PATH")
    p.set_defaults(func=_cmd_tradeoff)

    p = sub.add_parser(
        "sweep",
        help="resumable checkpointed campaign grid")
    p.add_argument("apps", nargs="+",
                   help="application name(s), e.g. P-BICG A-Laplacian")
    p.add_argument("--schemes", nargs="+",
                   default=["baseline", "correction"],
                   choices=("baseline", "detection", "correction"),
                   help="schemes to cross with every app "
                        "(default: baseline correction)")
    p.add_argument("--protects", nargs="+", default=["hot"],
                   help="protection level(s): none | hot | all | "
                        "<N objects> (default: hot)")
    p.add_argument("--runs", type=int, default=200,
                   help="fault-injection runs per cell (default 200)")
    p.add_argument("--blocks", type=int, default=1)
    p.add_argument("--bits", type=int, default=2)
    p.add_argument("--seed", type=int, default=20210621,
                   help="campaign seed (default 20210621)")
    p.add_argument("--app-seed", type=int, default=1234,
                   help="application input seed (default 1234)")
    p.add_argument("--scale", default="default",
                   choices=("default", "small"))
    p.add_argument("--selection", default="access-weighted",
                   choices=("access-weighted", "miss-weighted",
                            "uniform", "hot", "rest", "stratified"))
    p.add_argument("--target-margin", type=float, default=None,
                   metavar="M",
                   help="per cell, stop at the first chunk boundary "
                        "whose Wilson 95%% CI margin on the SDC rate "
                        "reaches M; part of the sweep identity")
    p.add_argument("--chunk-runs", type=int, default=None,
                   help="runs per durable work unit (default: each "
                        "cell split into 16 chunks); part of the "
                        "sweep identity")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1); never affects "
                        "results or checkpoint compatibility")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="persist every completed chunk under DIR")
    p.add_argument("--resume", action="store_true",
                   help="continue from the chunks already in "
                        "--checkpoint-dir")
    p.add_argument("--stop-after-chunks", type=int, default=None,
                   metavar="N",
                   help="stop (exit 75, checkpointed) after N newly "
                        "executed chunks")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries per chunk beyond the first attempt "
                        "(default 2)")
    p.add_argument("--chunk-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="deadline per chunk attempt (default: none)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write every cell's run records, in cell "
                        "order, to one JSONL file at PATH")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the merged sweep results as canonical "
                        "JSON to PATH")
    p.add_argument("--session-log", metavar="PATH", default=None,
                   help="narrate orchestration (chunks, retries, "
                        "fallbacks) as JSONL events at PATH")
    p.add_argument("--progress", action="store_true",
                   help="live one-line progress on stderr with the "
                        "active cell and its Wilson CI margin; never "
                        "affects results or checkpoints")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "optimize",
        help="protection design-space exploration (Pareto front over "
             "SDC rate, overhead, replica footprint)")
    p.add_argument("app", help="application name, e.g. P-BICG")
    p.add_argument("--strategy", default="greedy",
                   choices=("exhaustive", "greedy", "evolutionary",
                            "random"),
                   help="search strategy (default: greedy, seeded "
                        "from per-object vulnerability attribution)")
    p.add_argument("--objects", type=int, default=None, metavar="N",
                   help="restrict the design space to the first N "
                        "objects of the importance order "
                        "(default: all)")
    p.add_argument("--runs", type=int, default=200,
                   help="fault-injection runs per configuration "
                        "(default 200)")
    p.add_argument("--blocks", type=int, default=1)
    p.add_argument("--bits", type=int, default=2)
    p.add_argument("--selection", default="access-weighted",
                   choices=("access-weighted", "miss-weighted",
                            "uniform", "hot", "rest", "stratified"))
    p.add_argument("--seed", type=int, default=20210621,
                   help="campaign seed (default 20210621)")
    p.add_argument("--app-seed", type=int, default=1234,
                   help="application input seed (default 1234)")
    p.add_argument("--scale", default="default",
                   choices=("default", "small"))
    p.add_argument("--search-seed", type=int, default=1,
                   help="strategy randomness seed (default 1); part "
                        "of the search identity")
    p.add_argument("--population", type=int, default=12,
                   help="evolutionary/random candidates per round "
                        "(default 12)")
    p.add_argument("--generations", type=int, default=6,
                   help="evolutionary generations (default 6)")
    p.add_argument("--max-evals", type=int, default=None, metavar="N",
                   help="stop after N evaluated configurations")
    p.add_argument("--budget-overhead", type=float, default=None,
                   metavar="F",
                   help="budget solver: best SDC reduction with "
                        "simulated overhead <= F (e.g. 0.02 = 2%%)")
    p.add_argument("--budget-memory", type=int, default=None,
                   metavar="BYTES",
                   help="budget solver: replica footprint <= BYTES")
    p.add_argument("--chunk-runs", type=int, default=None,
                   help="runs per durable work unit (default: each "
                        "configuration split into 16 chunks)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1); never affects "
                        "the front or the trail")
    p.add_argument("--batch", type=int, default=1,
                   help="runs propagated per batched sweep "
                        "(default 1); never affects results")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="persist the search (manifest + per-round "
                        "campaign chunks) under DIR")
    p.add_argument("--resume", action="store_true",
                   help="continue the search already in "
                        "--checkpoint-dir")
    p.add_argument("--stop-after-chunks", type=int, default=None,
                   metavar="N",
                   help="stop (exit 75, checkpointed) after N newly "
                        "executed campaign chunks")
    p.add_argument("--trail", metavar="PATH", default=None,
                   help="write the per-round search decision log as "
                        "JSONL at PATH (byte-identical at any "
                        "--jobs/--batch and across resume)")
    p.add_argument("--json", action="store_true",
                   help="print the full search result as canonical "
                        "JSON instead of tables")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="also write the search result as canonical "
                        "JSON to PATH")
    p.add_argument("--progress", action="store_true",
                   help="live one-line campaign progress on stderr; "
                        "never affects results")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "trace",
        help="cycle-level trace of one timing run (Perfetto JSON)")
    _add_common(p, app_optional=True)
    p.add_argument("--app", dest="app_opt", default=None,
                   help="application name (alias for the positional)")
    p.add_argument("--scheme", default="baseline",
                   choices=("baseline", "detection", "correction"))
    p.add_argument("--protect", default="hot",
                   help="none | hot | all | <N objects>")
    p.add_argument("--out", default=None,
                   help="output path (default: <app>.trace.json)")
    p.add_argument("--objects-out", metavar="PATH", default=None,
                   help="also write the per-object attribution "
                        "summary as JSON to PATH")
    p.add_argument("--interval", type=int, default=1024,
                   help="time-series sampling period in cycles "
                        "(default 1024)")
    p.add_argument("--max-events", type=int, default=65536,
                   help="trace ring-buffer capacity (default 65536)")
    p.add_argument("--sample-rate", type=float, default=1.0,
                   help="keep fraction for high-frequency events "
                        "(default 1.0)")
    p.add_argument("--sample-seed", type=int, default=20210621,
                   help="RNG seed of the sampling coin flips")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("stats",
                       help="summarize a telemetry JSONL file")
    p.add_argument("file", help="telemetry JSONL written by "
                                "--telemetry, or - for stdin")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as canonical JSON instead "
                        "of the text table")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "vuln",
        help="per-object vulnerability profiles from a provenance "
             "file")
    p.add_argument("file", help="provenance JSONL written by "
                                "campaign --provenance, or - for "
                                "stdin")
    p.add_argument("--json", action="store_true",
                   help="emit the profiles as canonical JSON instead "
                        "of the text table")
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="keep only the N objects with the most SDC "
                        "attributions")
    p.set_defaults(func=_cmd_vuln)

    p = sub.add_parser(
        "db",
        help="the SQLite results warehouse (ingest/cells/query/"
             "export)")
    dbsub = p.add_subparsers(dest="db_command", required=True)

    d = dbsub.add_parser(
        "ingest",
        help="load JSONL/JSON result files into a store; re-ingest "
             "of identical content is a no-op")
    d.add_argument("store", help="SQLite store path (created on "
                                 "first use)")
    d.add_argument("files", nargs="+", metavar="FILE",
                   help="telemetry / provenance / decision / "
                        "session-event JSONL or BENCH_*.json files")
    d.add_argument("--kind", default=None,
                   choices=("runs", "provenance", "decisions",
                            "session", "bench"),
                   help="force the record kind (default: "
                        "auto-detect per file)")
    d.set_defaults(func=_cmd_db_ingest)

    d = dbsub.add_parser("cells",
                         help="list the warehoused cells")
    d.add_argument("store")
    d.add_argument("--json", action="store_true",
                   help="emit canonical JSON instead of the table")
    d.set_defaults(func=_cmd_db_cells)

    d = dbsub.add_parser(
        "query",
        help="per-cell outcome tallies with Wilson CIs")
    d.add_argument("store")
    d.add_argument("--app", default=None,
                   help="restrict to one application")
    d.add_argument("--scheme", default=None,
                   help="restrict to one protection scheme")
    d.add_argument("--json", action="store_true",
                   help="emit canonical JSON instead of the table")
    d.set_defaults(func=_cmd_db_query)

    d = dbsub.add_parser(
        "export",
        help="reconstruct one cell's canonical JSONL, byte-identical "
             "to the ingested file")
    d.add_argument("store")
    d.add_argument("digest", help="full cell digest (see `db cells`)")
    d.add_argument("--out", metavar="PATH", default=None,
                   help="write to PATH instead of stdout")
    d.set_defaults(func=_cmd_db_export)

    p = sub.add_parser(
        "report",
        help="render a results warehouse as one static HTML page")
    p.add_argument("store", help="SQLite store written by `db ingest`")
    p.add_argument("--out", metavar="PATH", default="report.html",
                   help="output HTML path (default: report.html)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("export", help="write exhibit data to CSV")
    _add_common(p)
    p.add_argument("--out", default="results",
                   help="output directory (default: results/)")
    p.add_argument("--runs", type=int, default=100)
    p.set_defaults(func=_cmd_export)

    return parser


def _exit_code_for(exc) -> int:
    """Map a library error to its exit code; first match wins, so
    subclasses come before their bases.  75 is BSD's EX_TEMPFAIL —
    "try again later" — the natural fit for interrupted-but-
    checkpointed."""
    from repro import errors

    mapping = (
        (errors.SessionInterrupted, 75),
        (errors.SessionError, 6),
        (errors.CheckpointError, 5),
        (errors.StoreError, 7),
        (errors.UnknownAppError, 3),
        (errors.UnknownSchemeError, 3),
        (errors.ConfigError, 4),
    )
    for klass, code in mapping:
        if isinstance(exc, klass):
            return code
    return 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.errors.ReproError`) are rendered to
    stderr and mapped to distinct exit codes — see the module
    docstring.  An interrupted sweep (``SIGINT`` or
    ``--stop-after-chunks``) exits 75 with its progress checkpointed.
    """
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    try:
        return args.func(args)
    except ReproError as exc:
        log.error(f"{args.command}: {exc}")
        return _exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())
