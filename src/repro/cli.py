"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``profile``  — access-pattern analysis of one application (Fig 3/4,
  Table III statistics, automated hot-object discovery).
* ``campaign`` — a fault-injection campaign under a chosen scheme and
  protection level (Figs 6/9 cells).
* ``perf``     — timing simulation of a protection configuration
  (Fig 7 bars).
* ``tradeoff`` — the Section V-C sweep across protection levels.
* ``export``   — write every exhibit's data for one application to
  CSV files (re-plottable with any tool).
* ``stats``    — validate and summarize a telemetry JSONL file.
* ``apps``     — list the available applications.

``campaign`` and ``tradeoff`` accept ``--telemetry PATH`` to stream
one per-run :class:`~repro.obs.records.RunRecord` JSON line per
fault-injection run; the file is byte-identical for any ``--jobs``
setting and is what ``repro stats`` consumes.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import campaign_table, performance_table
from repro.core.manager import ReliabilityManager
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
)
from repro.utils.tables import TextTable


def _manager(args) -> ReliabilityManager:
    app = create_app(args.app, scale=args.scale, seed=args.seed)
    return ReliabilityManager(app, jobs=getattr(args, "jobs", 1))


def _cmd_apps(_args) -> int:
    print("Resilience-study applications (Table II):")
    for name in APPLICATIONS:
        print(f"  {name}")
    print("Flat-profile applications (Fig 3(g)-(h)):")
    for name in FLAT_APPLICATIONS:
        print(f"  {name}")
    return 0


def _cmd_profile(args) -> int:
    manager = _manager(args)
    profile = manager.profile
    t3 = manager.table3()
    discovery = manager.discover_hot_objects()
    print(f"{manager.app.name}: {profile.total_reads} read transactions "
          f"over {profile.n_blocks} blocks")
    print(f"  max/min per-block access ratio: "
          f"{profile.max_min_ratio():.1f}x")
    print(f"  hot blocks: {len(manager.hot_blocks.hot_addrs)}")
    print(f"  hot objects (declared): {t3.hot_objects}")
    print(f"  hot objects (discovered): {discovery.hot_objects}")
    print(f"  hot footprint: {t3.hot_footprint_pct:.3f}% of app memory")
    print(f"  hot accesses:  {t3.hot_access_pct:.2f}% of all reads")
    return 0


def _cmd_campaign(args) -> int:
    manager = _manager(args)
    result = manager.evaluate(
        scheme=args.scheme,
        protect=args.protect if args.protect in ("none", "hot", "all")
        else int(args.protect),
        runs=args.runs,
        n_blocks=args.blocks,
        n_bits=args.bits,
        selection=args.selection,
        collect_records=args.telemetry is not None,
    )
    print(campaign_table([result]).render())
    print()
    print(f"SDC rate: {result.sdc_interval()}")
    if args.telemetry is not None:
        from repro.obs.records import TelemetryWriter

        with TelemetryWriter(args.telemetry) as writer:
            n = writer.write_result(result)
        print(f"wrote {n} run record(s) to {args.telemetry}")
    return 0


def _cmd_perf(args) -> int:
    manager = _manager(args)
    baseline = manager.simulate_performance("baseline", "none")
    reports = [baseline]
    if args.scheme != "baseline":
        protect = (
            args.protect if args.protect in ("none", "hot", "all")
            else int(args.protect)
        )
        reports.append(manager.simulate_performance(args.scheme, protect))
    print(performance_table(reports, baseline).render())
    return 0


def _cmd_tradeoff(args) -> int:
    from repro.analysis.tradeoff import knee_point, tradeoff_curve

    manager = _manager(args)
    if args.telemetry is not None:
        from repro.obs.records import TelemetryWriter

        with TelemetryWriter(args.telemetry) as writer:
            points = tradeoff_curve(
                manager, scheme=args.scheme, runs=args.runs,
                n_blocks=args.blocks, n_bits=args.bits,
                telemetry=writer,
            )
        print(f"wrote {writer.n_written} run record(s) to "
              f"{args.telemetry}")
    else:
        points = tradeoff_curve(
            manager, scheme=args.scheme, runs=args.runs,
            n_blocks=args.blocks, n_bits=args.bits,
        )
    table = TextTable(
        ["protected", "objects", "norm-time", "norm-missed", "SDC",
         "detected", "corrected"],
        float_format="{:.3f}",
    )
    for p in points:
        table.add_row([
            p.n_protected, ",".join(p.protected_names) or "-",
            p.slowdown, p.missed_accesses_ratio, p.sdc_count,
            p.detected_count, p.corrected_count,
        ])
    print(table.render())
    knee = knee_point(points)
    print(f"\nsweet spot: protect {knee.n_protected} object(s) "
          f"({','.join(knee.protected_names) or 'none'}) -> "
          f"{knee.sdc_count} SDCs at {100 * (knee.slowdown - 1):+.1f}% "
          "time")
    return 0


def _cmd_stats(args) -> int:
    from repro.obs.summary import summarize_file

    print(summarize_file(args.file).render())
    return 0


def _cmd_export(args) -> int:
    from repro.analysis.export import export_all

    manager = _manager(args)
    paths = export_all(manager, args.out, runs=args.runs)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", help="application name, e.g. P-BICG")
    parser.add_argument("--scale", default="default",
                        choices=("default", "small"))
    parser.add_argument("--seed", type=int, default=1234)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-centric GPU reliability management (DSN'21) "
                    "reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list applications").set_defaults(
        func=_cmd_apps)

    p = sub.add_parser("profile", help="access-pattern analysis")
    _add_common(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("campaign", help="fault-injection campaign")
    _add_common(p)
    p.add_argument("--scheme", default="baseline",
                   choices=("baseline", "detection", "correction"))
    p.add_argument("--protect", default="hot",
                   help="none | hot | all | <N objects>")
    p.add_argument("--runs", type=int, default=200)
    p.add_argument("--blocks", type=int, default=1)
    p.add_argument("--bits", type=int, default=2)
    p.add_argument("--selection", default="access-weighted",
                   choices=("access-weighted", "miss-weighted",
                            "uniform", "hot", "rest"))
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the campaign (default 1)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write one JSONL run record per fault-injection"
                        " run to PATH")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("perf", help="timing simulation")
    _add_common(p)
    p.add_argument("--scheme", default="detection",
                   choices=("baseline", "detection", "correction"))
    p.add_argument("--protect", default="hot")
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser("tradeoff", help="Section V-C sweep")
    _add_common(p)
    p.add_argument("--scheme", default="correction",
                   choices=("detection", "correction"))
    p.add_argument("--runs", type=int, default=100)
    p.add_argument("--blocks", type=int, default=1)
    p.add_argument("--bits", type=int, default=2)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per campaign (default 1)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write the whole sweep's run records to one "
                        "JSONL file at PATH")
    p.set_defaults(func=_cmd_tradeoff)

    p = sub.add_parser("stats",
                       help="summarize a telemetry JSONL file")
    p.add_argument("file", help="telemetry JSONL written by "
                                "--telemetry")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("export", help="write exhibit data to CSV")
    _add_common(p)
    p.add_argument("--out", default="results",
                   help="output directory (default: results/)")
    p.add_argument("--runs", type=int, default=100)
    p.set_defaults(func=_cmd_export)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
