"""Hamming (72,64) SECDED codec — the baseline protection in the paper.

The paper assumes caches and DRAM are SECDED-protected and focuses on
multi-bit faults that this code cannot correct.  This module makes the
premise concrete:

* 1-bit errors are corrected,
* 2-bit errors are detected but uncorrectable,
* 3-bit errors typically *miscorrect* (the decoder flips a third,
  innocent bit while claiming success),
* 4-bit errors can escape silently or alias to "detected".

Construction: extended Hamming code.  Codeword positions are numbered
1..71 with check bits at the power-of-two positions (1, 2, 4, 8, 16,
32, 64) and an overall-parity bit stored separately (position 0 of the
72-bit word).  The syndrome of a single flipped position equals that
position's number, which is what makes correction a table-free
operation in hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

DATA_BITS = 64
CHECK_BITS = 7  # plus 1 overall parity bit
CODEWORD_BITS = 72

_CHECK_POSITIONS = tuple(1 << i for i in range(CHECK_BITS))  # 1,2,...,64
_DATA_POSITIONS = tuple(
    p for p in range(1, CODEWORD_BITS) if p not in _CHECK_POSITIONS
)
assert len(_DATA_POSITIONS) == DATA_BITS


class DecodeStatus(enum.Enum):
    """What the decoder *believes* happened (hardware's view)."""

    NO_ERROR = "no_error"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"


class TrueOutcome(enum.Enum):
    """Ground-truth classification of a decode against the original word."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected"
    MISCORRECTED = "miscorrected"  # decoder claimed success, data wrong
    SILENT_ESCAPE = "silent_escape"  # decoder saw no error, data wrong


@dataclass(frozen=True)
class DecodeResult:
    status: DecodeStatus
    data: int
    corrected_position: int | None = None


class SecdedCodec:
    """Encoder/decoder for the (72,64) extended Hamming code."""

    def encode(self, data: int) -> int:
        """Encode a 64-bit data word into a 72-bit codeword."""
        if not 0 <= data < (1 << DATA_BITS):
            raise ValueError("data must be a 64-bit unsigned integer")
        word = 0
        for i, pos in enumerate(_DATA_POSITIONS):
            if (data >> i) & 1:
                word |= 1 << pos
        for i, check_pos in enumerate(_CHECK_POSITIONS):
            parity = 0
            for pos in range(1, CODEWORD_BITS):
                if pos & check_pos and (word >> pos) & 1:
                    parity ^= 1
            if parity:
                word |= 1 << check_pos
        overall = bin(word).count("1") & 1
        if overall:
            word |= 1  # position 0 holds the overall parity bit
        return word

    def decode(self, codeword: int) -> DecodeResult:
        """Decode a possibly corrupted codeword."""
        if not 0 <= codeword < (1 << CODEWORD_BITS):
            raise ValueError("codeword must be a 72-bit unsigned integer")
        syndrome = 0
        for i, check_pos in enumerate(_CHECK_POSITIONS):
            parity = 0
            for pos in range(1, CODEWORD_BITS):
                if pos & check_pos and (codeword >> pos) & 1:
                    parity ^= 1
            if parity:
                syndrome |= check_pos
        overall = bin(codeword).count("1") & 1

        if syndrome == 0 and overall == 0:
            return DecodeResult(DecodeStatus.NO_ERROR, self._extract(codeword))
        if overall == 1:
            # Odd number of flipped bits; the decoder assumes exactly one.
            if syndrome == 0:
                # The overall-parity bit itself flipped; data is intact.
                return DecodeResult(
                    DecodeStatus.CORRECTED, self._extract(codeword), 0
                )
            if syndrome < CODEWORD_BITS:
                fixed = codeword ^ (1 << syndrome)
                return DecodeResult(
                    DecodeStatus.CORRECTED, self._extract(fixed), syndrome
                )
            # Syndrome points outside the codeword: provably multi-bit.
            return DecodeResult(
                DecodeStatus.DETECTED_UNCORRECTABLE, self._extract(codeword)
            )
        # Even parity with non-zero syndrome: classic double-bit signature.
        return DecodeResult(
            DecodeStatus.DETECTED_UNCORRECTABLE, self._extract(codeword)
        )

    @staticmethod
    def _extract(codeword: int) -> int:
        data = 0
        for i, pos in enumerate(_DATA_POSITIONS):
            if (codeword >> pos) & 1:
                data |= 1 << i
        return data


def data_bit_position(data_bit: int) -> int:
    """Codeword position of data bit ``data_bit`` (0..63).

    Exposed for fault filtering: a stuck cell in the data array flips
    this codeword position.
    """
    if not 0 <= data_bit < DATA_BITS:
        raise ValueError(f"data bit {data_bit} outside [0, {DATA_BITS})")
    return _DATA_POSITIONS[data_bit]


def classify_true_outcome(
    codec: SecdedCodec, original_data: int, corrupted_codeword: int
) -> TrueOutcome:
    """Classify a decode against ground truth (the testbench's view)."""
    result = codec.decode(corrupted_codeword)
    clean = result.data == original_data
    if result.status is DecodeStatus.NO_ERROR:
        return TrueOutcome.CLEAN if clean else TrueOutcome.SILENT_ESCAPE
    if result.status is DecodeStatus.CORRECTED:
        return TrueOutcome.CORRECTED if clean else TrueOutcome.MISCORRECTED
    return TrueOutcome.DETECTED


def inject_and_decode(
    codec: SecdedCodec, data: int, bit_positions: list[int]
) -> TrueOutcome:
    """Encode ``data``, flip the given codeword bits, and classify."""
    codeword = codec.encode(data)
    for pos in bit_positions:
        codeword ^= 1 << pos
    return classify_true_outcome(codec, data, codeword)


def escape_rates(
    codec: SecdedCodec,
    n_bits: int,
    trials: int,
    rng: np.random.Generator,
) -> dict[TrueOutcome, float]:
    """Monte-Carlo outcome distribution for random ``n_bits``-bit errors.

    Used by the ECC ablation bench to quantify how often multi-bit
    faults defeat SECDED — the quantitative version of the paper's
    motivation.
    """
    counts: dict[TrueOutcome, int] = {o: 0 for o in TrueOutcome}
    for _ in range(trials):
        data = int(rng.integers(0, 1 << 63, dtype=np.int64)) * 2 + int(
            rng.integers(0, 2)
        )
        positions = rng.choice(CODEWORD_BITS, size=n_bits, replace=False)
        outcome = inject_and_decode(codec, data, [int(p) for p in positions])
        counts[outcome] += 1
    return {o: c / trials for o, c in counts.items()}
