"""Miss Status Holding Registers for the L1 data cache.

MSHRs bound the number of outstanding misses per SM and merge repeated
misses to the same cache line into one downstream request — both
first-order effects for GPU memory-level parallelism.  When the file is
full (or a line's merge capacity is exhausted) the LD/ST unit stalls,
which is one of the structural hazards the timing simulator models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MshrStats:
    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0
    merge_stalls: int = 0


class MshrFile:
    """Tracks outstanding misses keyed by cache-line address."""

    def __init__(self, n_entries: int, max_merged: int):
        if n_entries <= 0 or max_merged <= 0:
            raise ValueError("MSHR sizes must be positive")
        self.n_entries = n_entries
        self.max_merged = max_merged
        self._entries: dict[int, int] = {}  # line addr -> merged count
        self.stats = MshrStats()

    def probe(self, line_addr: int) -> str:
        """What would happen if a miss to ``line_addr`` arrived now?

        Returns ``"allocate"`` (new entry available), ``"merge"``
        (existing entry has room), or ``"stall"``.
        """
        count = self._entries.get(line_addr)
        if count is not None:
            return "merge" if count < self.max_merged else "stall"
        return "allocate" if len(self._entries) < self.n_entries else "stall"

    def add(self, line_addr: int) -> bool:
        """Register a miss.  Returns True if a *new* downstream request
        must be sent, False if it merged into an existing one.

        Raises ``RuntimeError`` if called while ``probe`` says stall —
        callers must check first.
        """
        outcome = self.probe(line_addr)
        if outcome == "stall":
            if line_addr in self._entries:
                self.stats.merge_stalls += 1
            else:
                self.stats.full_stalls += 1
            raise RuntimeError("MSHR add() while full; probe() first")
        if outcome == "merge":
            self._entries[line_addr] += 1
            self.stats.merges += 1
            return False
        self._entries[line_addr] = 1
        self.stats.allocations += 1
        return True

    def record_stall(self, line_addr: int) -> None:
        """Account a stall observed by the LD/ST unit."""
        if line_addr in self._entries:
            self.stats.merge_stalls += 1
        else:
            self.stats.full_stalls += 1

    def release(self, line_addr: int) -> int:
        """Retire the entry when the fill returns; yields merged count."""
        try:
            return self._entries.pop(line_addr)
        except KeyError:
            raise KeyError(
                f"MSHR release for line {line_addr:#x} with no entry"
            ) from None

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer, pid: int, tid: int = 0) -> None:
        """Instrument this MSHR file for a trace session.

        ``add``/``release`` are rebound to wrappers that emit (sampled)
        occupancy counter samples, and ``record_stall`` to one that
        emits a structural-stall instant — all on the owning SM's
        track, timestamped with the session's request-context cycle.
        Un-attached files keep the plain methods.
        """
        from repro.obs.trace import TID_MAIN

        orig_add = self.add
        orig_release = self.release
        orig_record_stall = self.record_stall
        entries = self._entries
        buf_append = tracer._buf.append
        sampled = tracer.sampled
        always = tracer.config.sample_rate >= 1.0
        occupancy_site = tracer.site(
            "mshr", f"mshr[{pid}]", pid, TID_MAIN, ph="C",
            argkeys=("outstanding",),
        )
        merge_stall_site = tracer.site("mshr", "merge-stall", pid, tid,
                                       ph="i")
        full_stall_site = tracer.site("mshr", "full-stall", pid, tid,
                                      ph="i")
        # Occupancy is bounded by the file size, so every counter args
        # tuple the hooks can emit is interned once and shared.
        occ_args = tuple((i,) for i in range(self.n_entries + 1))

        def traced_add(line_addr: int) -> bool:
            new_request = orig_add(line_addr)
            if (always or sampled()) and occupancy_site >= 0:
                buf_append((occupancy_site, tracer.now, 0, None,
                            occ_args[len(entries)]))
            return new_request

        def traced_release(line_addr: int) -> int:
            merged = orig_release(line_addr)
            if (always or sampled()) and occupancy_site >= 0:
                buf_append((occupancy_site, tracer.now, 0, None,
                            occ_args[len(entries)]))
            return merged

        def traced_record_stall(line_addr: int) -> None:
            orig_record_stall(line_addr)
            sid = (merge_stall_site if line_addr in entries
                   else full_stall_site)
            if sid >= 0:
                buf_append((sid, tracer.now, 0, None, None))

        self.add = traced_add
        self.release = traced_release
        self.record_stall = traced_record_stall
