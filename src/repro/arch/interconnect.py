"""Interconnect model: shared links with bandwidth and base latency.

The SM<->memory-partition network is modelled as one link per
direction per memory partition.  A transfer occupies the link for
``ceil(bytes / bytes_per_cycle)`` cycles, so concurrent transfers
queue; each transfer additionally pays a fixed pipeline latency.

This analytic occupancy model (next-free-time bookkeeping rather than
flit-level switching) reproduces the contention behaviour that matters
for the paper: replica transactions consume real bandwidth and delay
subsequent requests.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LinkStats:
    transfers: int = 0
    bytes_moved: int = 0
    queue_cycles: int = 0


class Link:
    """A single direction of a shared channel."""

    def __init__(self, bytes_per_cycle: int, base_latency: int, name: str):
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if base_latency < 0:
            raise ValueError("base_latency must be non-negative")
        self.bytes_per_cycle = bytes_per_cycle
        self.base_latency = base_latency
        self.name = name
        self.stats = LinkStats()
        self._next_free = 0

    def transfer(self, now: int, nbytes: int) -> int:
        """Schedule a transfer arriving at ``now``; return delivery time.

        NOTE: the traced variant in ``_attach_tracer`` duplicates this
        body (fused instrumentation) — keep the two in lockstep.
        """
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        occupancy = -(-nbytes // self.bytes_per_cycle)
        start = max(now, self._next_free)
        self._next_free = start + occupancy
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        self.stats.queue_cycles += start - now
        return start + occupancy + self.base_latency

    @property
    def busy_until(self) -> int:
        return self._next_free

    def reset(self) -> None:
        """Clear occupancy and counters."""
        self._next_free = 0
        self.stats = LinkStats()

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer, pid: int, tid: int) -> None:
        """Instrument this link for a trace session.

        ``transfer`` is rebound to a fused variant (a duplicate of the
        plain body — keep them in lockstep!) that emits one (sampled)
        occupancy span per transfer on the given track — ``ts`` is the
        cycle the transfer actually claims the link (after queueing),
        ``dur`` its occupancy.  The object tag comes from the session's
        request context, stamped by the LD/ST unit before descending.
        """
        bytes_per_cycle = self.bytes_per_cycle
        base_latency = self.base_latency
        stats = self.stats
        obj_stats = tracer.obj
        sampled = tracer.sampled
        attribute = tracer.attribute
        always = tracer.config.sample_rate >= 1.0
        buf_append = tracer._buf.append
        link_site = tracer.site("noc", self.name, pid, tid,
                                argkeys=("bytes", "queue"))

        def traced_transfer(now: int, nbytes: int) -> int:
            if nbytes <= 0:
                raise ValueError("transfer size must be positive")
            occupancy = -(-nbytes // bytes_per_cycle)
            free = self._next_free
            start = now if now > free else free
            self._next_free = start + occupancy
            stats.transfers += 1
            stats.bytes_moved += nbytes
            stats.queue_cycles += start - now
            obj = tracer.ctx_obj
            if obj is None:
                obj = attribute(-1)
            obj_stats(obj).noc_bytes += nbytes
            if (always or sampled()) and link_site >= 0:
                buf_append((link_site, start, occupancy, obj,
                            (nbytes, start - now)))
            return start + occupancy + base_latency

        self.transfer = traced_transfer


class Crossbar:
    """Request/response links for every memory partition.

    Requests are small (header-only, 8B for loads); responses carry a
    full cache line.  Each partition has an independent pair of links,
    matching the per-memory-channel organization of Figure 1.
    """

    REQUEST_BYTES = 8

    def __init__(
        self,
        n_partitions: int,
        bytes_per_cycle: int,
        base_latency: int,
        line_bytes: int,
    ):
        self.line_bytes = line_bytes
        self.request_links = [
            Link(bytes_per_cycle, base_latency, f"req[{i}]")
            for i in range(n_partitions)
        ]
        self.response_links = [
            Link(bytes_per_cycle, base_latency, f"rsp[{i}]")
            for i in range(n_partitions)
        ]

    def send_request(self, now: int, partition: int) -> int:
        """Deliver a header-only request packet; returns arrival time."""
        return self.request_links[partition].transfer(
            now, self.REQUEST_BYTES
        )

    def send_response(self, now: int, partition: int) -> int:
        """Deliver a full cache-line response; returns arrival time."""
        return self.response_links[partition].transfer(now, self.line_bytes)

    def reset(self) -> None:
        """Clear every link's occupancy and counters."""
        for link in self.request_links + self.response_links:
            link.reset()

    @property
    def total_bytes_moved(self) -> int:
        return sum(
            link.stats.bytes_moved
            for link in self.request_links + self.response_links
        )
