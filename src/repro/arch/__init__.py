"""GPU architecture substrate: device memory, caches, DRAM, ECC.

These are the hardware models underneath the paper's contribution.
Timing behaviour (who stalls, for how long) lives in :mod:`repro.sim`;
this package provides the stateful components the simulator drives and
the functional device memory that fault injection mutates.
"""

from repro.arch.address_space import (
    BLOCK_BYTES,
    DataObject,
    DeviceMemory,
    StuckAtOverlay,
)
from repro.arch.cache import Cache, CacheConfig
from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.arch.dram import DramChannel, DramTimings
from repro.arch.ecc import DecodeStatus, SecdedCodec, classify_true_outcome
from repro.arch.interconnect import Link
from repro.arch.mshr import MshrFile

__all__ = [
    "BLOCK_BYTES",
    "DataObject",
    "DeviceMemory",
    "StuckAtOverlay",
    "Cache",
    "CacheConfig",
    "GpuConfig",
    "PAPER_CONFIG",
    "DramChannel",
    "DramTimings",
    "DecodeStatus",
    "SecdedCodec",
    "classify_true_outcome",
    "Link",
    "MshrFile",
]
