"""GDDR5 DRAM channel model: banks, row buffers, data-bus occupancy.

Each memory partition owns one channel with ``n_banks`` banks.  A
request to an open row pays the row-hit latency; switching rows pays
the row-miss (precharge + activate + CAS) latency.  Banks serve one
request at a time and the channel data bus serializes line transfers —
together these approximate FR-FCFS service: requests to an open row
that arrive while the bank is busy complete back-to-back, while row
conflicts queue behind the precharge.

All times are in core cycles (the memory-clock ratio from Table I is
folded into the configured latencies).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTimings:
    row_hit_cycles: int = 60
    row_miss_cycles: int = 130
    bus_cycles_per_line: int = 12

    def __post_init__(self) -> None:
        if min(
            self.row_hit_cycles,
            self.row_miss_cycles,
            self.bus_cycles_per_line,
        ) <= 0:
            raise ValueError("DRAM timings must be positive")
        if self.row_miss_cycles < self.row_hit_cycles:
            raise ValueError("row miss cannot be faster than row hit")


@dataclass
class DramStats:
    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bank_queue_cycles: int = 0
    #: Cycles lines sat ready in a bank's row buffer waiting for the
    #: shared data bus to free up.
    bus_queue_cycles: int = 0


class _Bank:
    __slots__ = ("open_row", "next_free")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.next_free = 0


class DramChannel:
    """One memory controller + its banks."""

    def __init__(
        self,
        n_banks: int,
        row_bytes: int,
        line_bytes: int,
        timings: DramTimings,
        name: str = "dram",
    ):
        if n_banks <= 0:
            raise ValueError("n_banks must be positive")
        if row_bytes % line_bytes:
            raise ValueError("row size must be a multiple of the line size")
        self.n_banks = n_banks
        self.row_bytes = row_bytes
        self.line_bytes = line_bytes
        self.timings = timings
        self.name = name
        self.stats = DramStats()
        self._banks = [_Bank() for _ in range(n_banks)]
        self._bus_next_free = 0

    def _map(self, addr: int) -> tuple[int, int]:
        """Address -> (bank, row).

        Lines interleave across banks, with the bank index XOR-hashed
        by higher address bits (the standard GPU memory-controller
        trick) so that large power-of-two-ish strides — e.g. the
        column-major accesses of the Polybench kernels — still spread
        over all banks instead of aliasing onto a few.
        """
        line = addr // self.line_bytes
        row = addr // (self.row_bytes * self.n_banks)
        bank = (line ^ (line // self.n_banks) ^ (line // (self.n_banks ** 2))) \
            % self.n_banks
        return bank, row

    def access(self, now: int, addr: int) -> int:
        """Service a line read arriving at ``now``; return completion time.

        NOTE: the traced variant in ``_attach_tracer`` duplicates this
        body and ``_map`` (fused instrumentation) — keep them in
        lockstep.
        """
        bank_idx, row = self._map(addr)
        bank = self._banks[bank_idx]
        start = max(now, bank.next_free)
        self.stats.requests += 1
        self.stats.bank_queue_cycles += start - now
        if bank.open_row == row:
            latency = self.timings.row_hit_cycles
            self.stats.row_hits += 1
        else:
            latency = self.timings.row_miss_cycles
            self.stats.row_misses += 1
            bank.open_row = row
        data_ready = start + latency
        bus_start = max(data_ready, self._bus_next_free)
        bus_done = bus_start + self.timings.bus_cycles_per_line
        self._bus_next_free = bus_done
        self.stats.bus_queue_cycles += bus_start - data_ready
        # The line occupies the bank's row buffer until the bus has
        # carried it out, so the bank cannot accept its next request
        # before ``bus_done`` — not at ``data_ready``.
        bank.next_free = bus_done
        return bus_done

    @property
    def row_hit_rate(self) -> float:
        if not self.stats.requests:
            return 0.0
        return self.stats.row_hits / self.stats.requests

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer, pid: int, bus_tid: int) -> None:
        """Instrument this channel for a trace session.

        ``access`` is rebound to a fused variant (a duplicate of the
        plain ``access``/``_map`` bodies — keep them in lockstep!) that
        emits one bank-busy span on the bank's thread track and one
        bus-transfer span on ``bus_tid`` — both tagged with the owning
        data object.  Attribution totals (requests, busy/bus cycles,
        bytes) accumulate per object even when the sampled span itself
        is thinned out.
        """
        # Hot-path locals and per-bank interned sites.
        banks = self._banks
        n_banks = self.n_banks
        n_banks_sq = n_banks ** 2
        row_div = self.row_bytes * n_banks
        line_bytes = self.line_bytes
        hit_cycles = self.timings.row_hit_cycles
        miss_cycles = self.timings.row_miss_cycles
        bus_cycles = self.timings.bus_cycles_per_line
        stats = self.stats
        obj_stats = tracer.obj
        sampled = tracer.sampled
        attribute = tracer.attribute
        always = tracer.config.sample_rate >= 1.0
        buf_append = tracer._buf.append
        bucket = tracer._interval_obj_bytes
        bank_args = ("bank_queue", "row")
        hit_sites = [
            tracer.site("dram", "row-hit", pid, b, argkeys=bank_args)
            for b in range(len(banks))
        ]
        miss_sites = [
            tracer.site("dram", "row-miss", pid, b, argkeys=bank_args)
            for b in range(len(banks))
        ]
        bus_site = tracer.site("dram", "bus", pid, bus_tid,
                               argkeys=("bus_queue",))

        def traced_access(now: int, addr: int) -> int:
            line = addr // line_bytes
            row = addr // row_div
            bank_idx = (line ^ (line // n_banks)
                        ^ (line // n_banks_sq)) % n_banks
            bank = banks[bank_idx]
            bank_free = bank.next_free
            start = bank_free if bank_free > now else now
            stats.requests += 1
            stats.bank_queue_cycles += start - now
            row_hit = bank.open_row == row
            if row_hit:
                stats.row_hits += 1
                data_ready = start + hit_cycles
            else:
                stats.row_misses += 1
                bank.open_row = row
                data_ready = start + miss_cycles
            bus_free = self._bus_next_free
            bus_start = data_ready if data_ready > bus_free else bus_free
            done = bus_start + bus_cycles
            self._bus_next_free = done
            stats.bus_queue_cycles += bus_start - data_ready
            # The line occupies the bank's row buffer until the bus has
            # carried it out (see the plain body).
            bank.next_free = done
            obj = tracer.ctx_obj
            if obj is None:
                obj = attribute(addr)
            ostats = obj_stats(obj)
            ostats.dram_reads += 1
            ostats.dram_busy_cycles += done - start
            ostats.dram_bus_cycles += done - bus_start
            ostats.read_bytes += line_bytes
            bucket[obj] = bucket.get(obj, 0) + line_bytes
            if always or sampled():
                sid = hit_sites[bank_idx] if row_hit \
                    else miss_sites[bank_idx]
                if sid >= 0:
                    buf_append((sid, start, done - start, obj,
                                (start - now, row)))
                    buf_append((bus_site, bus_start, done - bus_start,
                                obj, (bus_start - data_ready,)))
            return done

        self.access = traced_access

    def reset(self) -> None:
        """Close all rows, clear timing state and counters."""
        self.stats = DramStats()
        for bank in self._banks:
            bank.open_row = None
            bank.next_free = 0
        self._bus_next_free = 0
