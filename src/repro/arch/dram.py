"""GDDR5 DRAM channel model: banks, row buffers, data-bus occupancy.

Each memory partition owns one channel with ``n_banks`` banks.  A
request to an open row pays the row-hit latency; switching rows pays
the row-miss (precharge + activate + CAS) latency.  Banks serve one
request at a time and the channel data bus serializes line transfers —
together these approximate FR-FCFS service: requests to an open row
that arrive while the bank is busy complete back-to-back, while row
conflicts queue behind the precharge.

All times are in core cycles (the memory-clock ratio from Table I is
folded into the configured latencies).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTimings:
    row_hit_cycles: int = 60
    row_miss_cycles: int = 130
    bus_cycles_per_line: int = 12

    def __post_init__(self) -> None:
        if min(
            self.row_hit_cycles,
            self.row_miss_cycles,
            self.bus_cycles_per_line,
        ) <= 0:
            raise ValueError("DRAM timings must be positive")
        if self.row_miss_cycles < self.row_hit_cycles:
            raise ValueError("row miss cannot be faster than row hit")


@dataclass
class DramStats:
    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bank_queue_cycles: int = 0
    #: Cycles lines sat ready in a bank's row buffer waiting for the
    #: shared data bus to free up.
    bus_queue_cycles: int = 0


class _Bank:
    __slots__ = ("open_row", "next_free")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.next_free = 0


class DramChannel:
    """One memory controller + its banks."""

    def __init__(
        self,
        n_banks: int,
        row_bytes: int,
        line_bytes: int,
        timings: DramTimings,
        name: str = "dram",
    ):
        if n_banks <= 0:
            raise ValueError("n_banks must be positive")
        if row_bytes % line_bytes:
            raise ValueError("row size must be a multiple of the line size")
        self.n_banks = n_banks
        self.row_bytes = row_bytes
        self.line_bytes = line_bytes
        self.timings = timings
        self.name = name
        self.stats = DramStats()
        self._banks = [_Bank() for _ in range(n_banks)]
        self._bus_next_free = 0

    def _map(self, addr: int) -> tuple[int, int]:
        """Address -> (bank, row).

        Lines interleave across banks, with the bank index XOR-hashed
        by higher address bits (the standard GPU memory-controller
        trick) so that large power-of-two-ish strides — e.g. the
        column-major accesses of the Polybench kernels — still spread
        over all banks instead of aliasing onto a few.
        """
        line = addr // self.line_bytes
        row = addr // (self.row_bytes * self.n_banks)
        bank = (line ^ (line // self.n_banks) ^ (line // (self.n_banks ** 2))) \
            % self.n_banks
        return bank, row

    def access(self, now: int, addr: int) -> int:
        """Service a line read arriving at ``now``; return completion time."""
        bank_idx, row = self._map(addr)
        bank = self._banks[bank_idx]
        start = max(now, bank.next_free)
        self.stats.requests += 1
        self.stats.bank_queue_cycles += start - now
        if bank.open_row == row:
            latency = self.timings.row_hit_cycles
            self.stats.row_hits += 1
        else:
            latency = self.timings.row_miss_cycles
            self.stats.row_misses += 1
            bank.open_row = row
        data_ready = start + latency
        bus_start = max(data_ready, self._bus_next_free)
        bus_done = bus_start + self.timings.bus_cycles_per_line
        self._bus_next_free = bus_done
        self.stats.bus_queue_cycles += bus_start - data_ready
        # The line occupies the bank's row buffer until the bus has
        # carried it out, so the bank cannot accept its next request
        # before ``bus_done`` — not at ``data_ready``.
        bank.next_free = bus_done
        return bus_done

    @property
    def row_hit_rate(self) -> float:
        if not self.stats.requests:
            return 0.0
        return self.stats.row_hits / self.stats.requests

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer, pid: int, bus_tid: int) -> None:
        """Instrument this channel for a trace session.

        ``access`` is rebound to a wrapper that re-derives the bank and
        bus schedule from pre-call state (the mapping and timing are
        pure functions of it), then emits one bank-busy span on the
        bank's thread track and one bus-transfer span on ``bus_tid`` —
        both tagged with the owning data object.  Attribution totals
        (requests, busy/bus cycles, bytes) accumulate per object even
        when the sampled span itself is thinned out.
        """
        orig_access = self.access

        def traced_access(now: int, addr: int) -> int:
            bank_idx, row = self._map(addr)
            bank = self._banks[bank_idx]
            bank_free = bank.next_free
            open_row = bank.open_row
            bus_free = self._bus_next_free
            done = orig_access(now, addr)
            start = max(now, bank_free)
            row_hit = open_row == row
            data_ready = start + (
                self.timings.row_hit_cycles if row_hit
                else self.timings.row_miss_cycles
            )
            bus_start = max(data_ready, bus_free)
            obj = tracer.attribute(addr)
            stats = tracer.obj(obj)
            stats.dram_reads += 1
            stats.dram_busy_cycles += done - start
            stats.dram_bus_cycles += done - bus_start
            tracer.account_read_bytes(obj, self.line_bytes)
            if tracer.sampled():
                tracer.emit(
                    "dram",
                    "row-hit" if row_hit else "row-miss",
                    start, done - start, pid, bank_idx, obj=obj,
                    args={"bank_queue": start - now, "row": row},
                )
                tracer.emit(
                    "dram", "bus", bus_start, done - bus_start, pid,
                    bus_tid, obj=obj,
                    args={"bus_queue": bus_start - data_ready},
                )
            return done

        self.access = traced_access

    def reset(self) -> None:
        """Close all rows, clear timing state and counters."""
        self.stats = DramStats()
        for bank in self._banks:
            bank.open_row = None
            bank.next_free = 0
        self._bus_next_free = 0
