"""Simulated GPU device memory: allocator, data objects, fault overlays.

The fault model of the paper (after Luo et al.) injects *permanent
stuck-at* faults into 128-byte data memory blocks of the application
address space.  Permanence matters: a stuck cell re-asserts its value
after every write.  We model this with per-byte OR/AND-NOT overlay
masks applied on every read, so kernels always observe the fault while
the pristine data stays available for ground-truth comparison.

Kernels do not get raw views into the buffer; they read and write
through :meth:`DeviceMemory.read_object` / ``write_object``, which is
where the overlays (and, for protected objects, the replication
schemes) interpose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

import numpy as np

from repro.errors import AddressError, AllocationError

#: Cache/memory block granularity used throughout the paper.
BLOCK_BYTES = 128


@dataclass(frozen=True)
class DataObject:
    """A named, block-aligned allocation in device memory.

    Mirrors a CUDA ``cudaMalloc`` region passed to a kernel: it has a
    base address, an element dtype and shape, and a read-only flag (the
    paper's hot data objects are always read-only kernel inputs).
    """

    name: str
    base_addr: int
    dtype: np.dtype
    shape: tuple[int, ...]
    read_only: bool = True

    @cached_property
    def nbytes(self) -> int:
        return math.prod(self.shape) * self.dtype.itemsize

    @cached_property
    def n_blocks(self) -> int:
        return -(-self.nbytes // BLOCK_BYTES)

    @cached_property
    def end_addr(self) -> int:
        """One past the last byte of the object's data."""
        return self.base_addr + self.nbytes

    def block_addr(self, block_index: int) -> int:
        """Byte address of the object's ``block_index``-th 128B block."""
        if not 0 <= block_index < self.n_blocks:
            raise AddressError(
                f"{self.name}: block {block_index} outside "
                f"[0, {self.n_blocks})"
            )
        return self.base_addr + block_index * BLOCK_BYTES

    def block_addrs(self) -> range:
        """All block base addresses covering this object."""
        return range(
            self.base_addr, self.base_addr + self.n_blocks * BLOCK_BYTES,
            BLOCK_BYTES,
        )

    def element_block(self, flat_index: int) -> int:
        """Object-relative block index holding flat element ``flat_index``."""
        byte = flat_index * self.dtype.itemsize
        if not 0 <= byte < self.nbytes:
            raise AddressError(
                f"{self.name}: element {flat_index} out of range"
            )
        return byte // BLOCK_BYTES


@dataclass(frozen=True)
class StuckAtOverlay:
    """Stuck-at fault masks for one byte of memory.

    Read value is ``(raw | or_mask) & ~and_mask``: bits in ``or_mask``
    are stuck at 1, bits in ``and_mask`` are stuck at 0.
    """

    or_mask: int
    and_mask: int

    def apply(self, raw: int) -> int:
        """Read value of a raw byte through the stuck bits."""
        return (raw | self.or_mask) & ~self.and_mask & 0xFF

    def merged_with(self, other: "StuckAtOverlay") -> "StuckAtOverlay":
        """Combine two overlays on the same byte (later faults win ties)."""
        or_mask = (self.or_mask | other.or_mask) & ~other.and_mask
        and_mask = (self.and_mask | other.and_mask) & ~other.or_mask
        return StuckAtOverlay(or_mask & 0xFF, and_mask & 0xFF)


class DeviceMemory:
    """Byte-addressable simulated device memory with a bump allocator.

    Allocations are aligned to :data:`BLOCK_BYTES` so every data object
    starts on a cache-block boundary, exactly as ``cudaMalloc``
    guarantees (256B alignment on real hardware).
    """

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024):
        if capacity_bytes <= 0 or capacity_bytes % BLOCK_BYTES:
            raise AllocationError(
                "capacity must be a positive multiple of the block size"
            )
        self.capacity = capacity_bytes
        self._buf: np.ndarray | None = np.zeros(capacity_bytes,
                                                dtype=np.uint8)
        #: Copy-on-write state.  A regular memory owns ``_buf`` and has
        #: ``_base is None``.  A :meth:`cow_clone` twin instead shares
        #: its source's buffer read-only via ``_base`` (valid for the
        #: first ``_base_limit`` bytes) and materializes private,
        #: per-object segments in ``_private`` only when written.
        self._base: np.ndarray | None = None
        self._base_limit = 0
        self._private: dict[str, np.ndarray] = {}
        self._next_free = 0
        self._objects: dict[str, DataObject] = {}
        self._overlays: dict[int, StuckAtOverlay] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype=np.float32,
        read_only: bool = True,
    ) -> DataObject:
        """Allocate a named, block-aligned object and return its handle."""
        if name in self._objects:
            raise AllocationError(f"object {name!r} already allocated")
        if isinstance(shape, int):
            shape = (shape,)
        np_dtype = np.dtype(dtype)
        obj = DataObject(name, self._next_free, np_dtype, tuple(shape),
                         read_only)
        if obj.nbytes <= 0:
            raise AllocationError(f"object {name!r} has zero size")
        aligned = obj.n_blocks * BLOCK_BYTES
        if self._next_free + aligned > self.capacity:
            raise AllocationError(
                f"out of device memory allocating {name!r} "
                f"({aligned} bytes, {self.capacity - self._next_free} free)"
            )
        self._next_free += aligned
        self._objects[name] = obj
        return obj

    def reserve_blocks(self, n_blocks: int) -> None:
        """Skip ``n_blocks`` of address space (alignment/coloring pad).

        Used by the replica allocator to steer copies onto different
        memory channels and DRAM banks than their primaries.
        """
        if n_blocks < 0:
            raise AllocationError("cannot reserve a negative pad")
        pad = n_blocks * BLOCK_BYTES
        if self._next_free + pad > self.capacity:
            raise AllocationError("out of device memory reserving pad")
        self._next_free += pad

    def clone(self) -> "DeviceMemory":
        """A pristine copy: same allocations and contents, no faults.

        Campaigns set an application up once and clone per run, which
        avoids regenerating inputs thousands of times.  Only the
        allocated prefix of the buffer is copied.
        """
        twin = DeviceMemory.__new__(DeviceMemory)
        twin.capacity = self.capacity
        twin._buf = np.zeros(self.capacity, dtype=np.uint8)
        if self._next_free:
            twin._buf[: self._next_free] = self._raw_range(
                0, self._next_free
            )
        twin._base = None
        twin._base_limit = 0
        twin._private = {}
        twin._next_free = self._next_free
        twin._objects = dict(self._objects)
        twin._overlays = {}
        return twin

    def cow_clone(self) -> "DeviceMemory":
        """A copy-on-write twin: reads share this memory's buffer.

        The twin sees the same allocations and contents but copies
        nothing up front; a private per-object segment is materialized
        only when the twin *writes* an object.  Fault overlays are
        per-twin metadata already, so injections never touch the shared
        buffer.  The source must not be mutated while the twin is
        alive — exactly the campaign contract, where the prepared
        per-campaign image is frozen and each run clones it.
        """
        if self._base is not None:
            # Chained COW: flatten through a materialized copy whose
            # buffer the new twin keeps alive by reference.
            return self.clone().cow_clone()
        twin = DeviceMemory.__new__(DeviceMemory)
        twin.capacity = self.capacity
        twin._buf = None
        twin._base = self._buf
        twin._base_limit = self._next_free
        twin._private = {}
        twin._next_free = self._next_free
        twin._objects = dict(self._objects)
        twin._overlays = {}
        return twin

    @property
    def is_cow(self) -> bool:
        """Whether this memory is a copy-on-write clone."""
        return self._base is not None

    @property
    def cow_dirty_names(self) -> frozenset[str] | None:
        """Objects whose bytes may differ from the clone-time image.

        ``None`` means writes are not tracked (regular memories);
        callers needing the guarantee must then assume anything may
        have been written.  For a COW clone this is exactly the set of
        privately materialized objects.
        """
        if self._base is None:
            return None
        return frozenset(self._private)

    @property
    def private_bytes(self) -> int:
        """Bytes privately materialized by this COW clone."""
        return sum(seg.nbytes for seg in self._private.values())

    def clone_with_faults(self) -> "DeviceMemory":
        """Like :meth:`clone`, but the stuck-at overlays come along.

        Used by redundant-execution baselines: each redundant run gets
        a fresh copy of the state but sees the *same* permanent faults
        (they live in the physical cells, not in the copy)."""
        twin = self.clone()
        twin._overlays = dict(self._overlays)
        return twin

    def object(self, name: str) -> DataObject:
        """Look up a live allocation by name."""
        try:
            return self._objects[name]
        except KeyError:
            raise AddressError(f"no object named {name!r}") from None

    def has_object(self, name: str) -> bool:
        """Whether an allocation with this name exists."""
        return name in self._objects

    @property
    def objects(self) -> list[DataObject]:
        return list(self._objects.values())

    @property
    def bytes_allocated(self) -> int:
        return self._next_free

    def object_at(self, addr: int) -> DataObject:
        """The object whose allocation covers byte address ``addr``."""
        for obj in self._objects.values():
            if obj.base_addr <= addr < obj.base_addr + \
                    obj.n_blocks * BLOCK_BYTES:
                return obj
        raise AddressError(f"address {addr:#x} is not allocated")

    # ------------------------------------------------------------------
    # Data access (kernels and schemes go through these)
    # ------------------------------------------------------------------
    def write_object(self, obj: DataObject, values: np.ndarray) -> None:
        """Store ``values`` into the object (ignores stuck-at overlays:
        the cells physically latch whatever survives, and the overlay is
        re-applied on read)."""
        arr = np.ascontiguousarray(values, dtype=obj.dtype)
        if arr.shape != obj.shape:
            arr = arr.reshape(obj.shape)
        raw = arr.view(np.uint8).reshape(-1)
        self._writable(obj)[:] = raw

    def read_object(self, obj: DataObject) -> np.ndarray:
        """Read the object as a fresh ndarray with faults applied."""
        raw = self._read_range(obj.base_addr, obj.nbytes)
        return raw.view(obj.dtype).reshape(obj.shape)

    def read_block(self, addr: int, nbytes: int = BLOCK_BYTES) -> np.ndarray:
        """Read raw bytes (with faults applied) starting at ``addr``."""
        if not 0 <= addr <= self.capacity - nbytes:
            raise AddressError(f"block read at {addr:#x} out of range")
        return self._read_range(addr, nbytes)

    def read_byte(self, addr: int) -> int:
        """Read one byte (with faults applied) at ``addr``."""
        if not 0 <= addr < self.capacity:
            raise AddressError(f"byte read at {addr:#x} out of range")
        raw = int(self._raw_range(addr, 1)[0])
        overlay = self._overlays.get(addr)
        return overlay.apply(raw) if overlay else raw

    def read_pristine(self, obj: DataObject) -> np.ndarray:
        """Ground-truth read that ignores fault overlays (for oracles)."""
        raw = self._raw_range(obj.base_addr, obj.nbytes)
        return raw.view(obj.dtype).reshape(obj.shape)

    def _writable(self, obj: DataObject) -> np.ndarray:
        """The mutable byte storage of an object's data bytes.

        For a COW clone this materializes (once) a private copy of the
        object — the copy-on-write step.
        """
        if self._base is None:
            return self._buf[obj.base_addr:obj.base_addr + obj.nbytes]
        seg = self._private.get(obj.name)
        if seg is None:
            if obj.end_addr <= self._base_limit:
                seg = self._base[
                    obj.base_addr:obj.base_addr + obj.nbytes
                ].copy()
            else:
                # Allocated after the clone: nothing shared to copy.
                seg = np.zeros(obj.nbytes, dtype=np.uint8)
            self._private[obj.name] = seg
        return seg

    def _raw_range(self, addr: int, nbytes: int) -> np.ndarray:
        """A fresh copy of raw storage bytes (no overlays applied)."""
        if self._base is None:
            return self._buf[addr:addr + nbytes].copy()
        end = addr + nbytes
        data = np.zeros(nbytes, dtype=np.uint8)
        shared_end = min(end, self._base_limit)
        if shared_end > addr:
            data[: shared_end - addr] = self._base[addr:shared_end]
        for name, seg in self._private.items():
            obj = self._objects[name]
            lo = max(addr, obj.base_addr)
            hi = min(end, obj.end_addr)
            if lo < hi:
                data[lo - addr:hi - addr] = seg[
                    lo - obj.base_addr:hi - obj.base_addr
                ]
        return data

    def _read_range(self, addr: int, nbytes: int) -> np.ndarray:
        data = self._raw_range(addr, nbytes)
        if self._overlays:
            for byte_addr, overlay in self._overlays.items():
                off = byte_addr - addr
                if 0 <= off < nbytes:
                    data[off] = overlay.apply(int(data[off]))
        return data

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_stuck_at(
        self, byte_addr: int, bit_in_byte: int, stuck_value: int
    ) -> None:
        """Make one bit of one byte permanently read as ``stuck_value``."""
        if not 0 <= byte_addr < self.capacity:
            raise AddressError(f"fault address {byte_addr:#x} out of range")
        if not 0 <= bit_in_byte < 8:
            raise AddressError(f"bit {bit_in_byte} outside byte")
        if stuck_value not in (0, 1):
            raise AddressError("stuck_value must be 0 or 1")
        mask = 1 << bit_in_byte
        new = (
            StuckAtOverlay(mask, 0)
            if stuck_value
            else StuckAtOverlay(0, mask)
        )
        existing = self._overlays.get(byte_addr)
        self._overlays[byte_addr] = (
            existing.merged_with(new) if existing else new
        )

    def inject_stuck_mask(
        self, byte_addr: int, or_mask: int, and_mask: int
    ) -> None:
        """Install several stuck bits of one byte in one step.

        Equivalent to the sequence of :meth:`inject_stuck_at` calls the
        masks were folded from (bit-disjoint masks; an existing overlay
        on the byte is merged with later-faults-win semantics).
        """
        if not 0 <= byte_addr < self.capacity:
            raise AddressError(f"fault address {byte_addr:#x} out of range")
        if or_mask & ~0xFF or and_mask & ~0xFF or or_mask & and_mask:
            raise AddressError(
                f"invalid stuck masks {or_mask:#x}/{and_mask:#x}"
            )
        new = StuckAtOverlay(or_mask, and_mask)
        existing = self._overlays.get(byte_addr)
        self._overlays[byte_addr] = (
            existing.merged_with(new) if existing else new
        )

    def clear_faults(self) -> None:
        """Remove every injected stuck-at overlay."""
        self._overlays.clear()

    @property
    def fault_count(self) -> int:
        """Number of distinct faulted bits currently injected."""
        return sum(
            (o.or_mask | o.and_mask).bit_count()
            for o in self._overlays.values()
        )

    def faulted_addresses(self) -> list[int]:
        """Byte addresses currently carrying stuck bits."""
        return sorted(self._overlays)

    def overlay_offsets(self, obj: DataObject) -> list[int]:
        """Sorted object-relative byte offsets carrying stuck bits."""
        base, end = obj.base_addr, obj.end_addr
        return sorted(
            addr - base for addr in self._overlays if base <= addr < end
        )

    # ------------------------------------------------------------------
    # Block enumeration helpers (used by fault-site selection)
    # ------------------------------------------------------------------
    def blocks_of(self, objects: Iterable[DataObject]) -> list[int]:
        """All block base addresses covering the given objects."""
        addrs: list[int] = []
        for obj in objects:
            addrs.extend(obj.block_addrs())
        return addrs

    def iter_blocks(self) -> Iterator[int]:
        """Block base addresses of every live allocation."""
        for obj in self._objects.values():
            yield from obj.block_addrs()
