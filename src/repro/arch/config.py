"""Simulated GPU configuration (the paper's Table I).

All latencies are expressed in *core* clock cycles so the simulator
runs on a single timebase; the DRAM/interconnect clock ratios from
Table I are folded into the derived cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

KIB = 1024


@dataclass(frozen=True)
class GpuConfig:
    """Architecture parameters for the simulated GPU.

    Defaults reproduce Table I of the paper (a GTX480/Fermi-class
    configuration, the GPGPU-Sim default the authors evaluate on).
    """

    # Core features
    core_clock_mhz: int = 1400
    simt_width: int = 32
    n_sms: int = 15
    issue_width: int = 2

    # Resources per core
    shared_mem_bytes: int = 32 * KIB
    register_file_bytes: int = 32 * KIB
    max_ctas_per_sm: int = 8
    max_warps_per_sm: int = 48

    # L1 caches per core
    l1_size_bytes: int = 16 * KIB
    l1_assoc: int = 4
    icache_size_bytes: int = 2 * KIB
    icache_assoc: int = 4
    line_bytes: int = 128
    l1_mshr_entries: int = 32
    l1_mshr_max_merged: int = 8
    l1_hit_latency: int = 28

    # L2 cache (one slice per memory channel)
    l2_slice_size_bytes: int = 256 * KIB
    l2_assoc: int = 16
    l2_hit_latency: int = 40
    l2_service_cycles: int = 2  # tag-array occupancy per request

    # Memory model
    n_mem_channels: int = 6
    dram_banks_per_channel: int = 16
    mem_clock_mhz: int = 924
    dram_row_bytes: int = 2 * KIB
    dram_row_hit_cycles: int = 60
    dram_row_miss_cycles: int = 130
    dram_bus_cycles_per_line: int = 12

    # Interconnect
    interconnect_clock_mhz: int = 1400
    interconnect_latency: int = 8
    interconnect_bytes_per_cycle: int = 32

    # Reliability-scheme hardware (Section IV-C of the paper)
    addr_table_bytes: int = 128
    inst_table_bytes: int = 128
    pending_compare_entries: int = 32
    comparator_width_bits: int = 256

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line_bytes must be a positive power of two")
        if self.l1_size_bytes % (self.line_bytes * self.l1_assoc):
            raise ConfigError("L1 size must divide into line*assoc sets")
        if self.l2_slice_size_bytes % (self.line_bytes * self.l2_assoc):
            raise ConfigError("L2 slice size must divide into line*assoc sets")
        for name in ("n_sms", "n_mem_channels", "simt_width", "issue_width"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def l2_total_bytes(self) -> int:
        """Aggregate L2 capacity across all slices (1536 KB in Table I)."""
        return self.l2_slice_size_bytes * self.n_mem_channels

    @property
    def warp_size(self) -> int:
        return self.simt_width

    def scaled(self, **overrides) -> "GpuConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def channel_of_address(self, addr: int) -> int:
        """Memory partition servicing a byte address (line-interleaved)."""
        return (addr // self.line_bytes) % self.n_mem_channels

    def describe(self) -> list[tuple[str, str]]:
        """Table I rows as (category, description) pairs."""
        return [
            (
                "Core Features",
                f"{self.core_clock_mhz}MHz core clock, "
                f"SIMT width = {self.simt_width}",
            ),
            (
                "Resources / Core",
                f"{self.shared_mem_bytes // KIB}KB shared memory, "
                f"{self.register_file_bytes // KIB}KB register file, "
                f"{self.n_sms} SMs",
            ),
            (
                "L1 Caches / Core",
                f"{self.l1_size_bytes // KIB}KB {self.l1_assoc}-way L1 data "
                f"cache, {self.icache_size_bytes // KIB}KB "
                f"{self.icache_assoc}-way I-cache, "
                f"{self.line_bytes}B cache block size",
            ),
            (
                "L2 Caches",
                f"{self.l2_assoc}-way "
                f"{self.l2_slice_size_bytes // KIB} KB/memory channel "
                f"({self.l2_total_bytes // KIB} KB in total), "
                f"{self.line_bytes}B cache block size",
            ),
            (
                "Memory Model",
                f"{self.n_mem_channels} GDDR5 Memory Controllers, "
                f"FR-FCFS scheduling, "
                f"{self.dram_banks_per_channel} DRAM-banks, "
                f"{self.mem_clock_mhz} MHz memory clock",
            ),
            (
                "Interconnect",
                f"{self.interconnect_clock_mhz}MHz interconnect clock",
            ),
        ]


#: The exact configuration evaluated in the paper (Table I).
PAPER_CONFIG = GpuConfig()


def fast_config() -> GpuConfig:
    """A reduced configuration for quick tests (fewer SMs/channels)."""
    return GpuConfig(
        n_sms=4,
        n_mem_channels=2,
        l2_slice_size_bytes=64 * KIB,
        max_warps_per_sm=24,
    )
