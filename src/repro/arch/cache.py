"""Set-associative cache model with LRU replacement and per-object stats.

Used for both the per-SM L1 data caches and the per-channel L2 slices.
Stores are modelled write-through / no-write-allocate, the usual GPU
L1 policy, so only loads allocate lines.

The model is functional-timing hybrid: it tracks hit/miss state
exactly (tag arrays, LRU order) but does not hold data — data lives in
:class:`repro.arch.address_space.DeviceMemory` and the timing layer
composes latencies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    assoc: int
    line_bytes: int = 128

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache dimensions must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} is not a multiple of "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypassed: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """An LRU set-associative tag array.

    ``lookup`` probes without side effects; ``access`` probes and, on a
    miss with ``allocate=True``, fills the line (evicting LRU).  The
    reliability schemes use ``allocate=False`` for replica transactions
    so verification traffic does not pollute the L1.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # Each set is an OrderedDict tag -> None; last entry = MRU.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]

    def _index(self, addr: int) -> tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.n_sets, line // self.config.n_sets

    def lookup(self, addr: int) -> bool:
        """Probe only: is the line present?  No stats, no LRU update."""
        set_idx, tag = self._index(addr)
        return tag in self._sets[set_idx]

    def access(self, addr: int, allocate: bool = True) -> bool:
        """Access a line; returns True on hit.  Misses allocate (LRU).

        NOTE: the traced variant in ``_attach_tracer`` duplicates this
        body (fused instrumentation) — keep the two in lockstep.
        """
        self.stats.accesses += 1
        set_idx, tag = self._index(addr)
        cache_set = self._sets[set_idx]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if allocate:
            self._fill(cache_set, tag)
        else:
            self.stats.bypassed += 1
        return False

    def fill(self, addr: int) -> None:
        """Install a line (response path fill) without counting an access."""
        set_idx, tag = self._index(addr)
        cache_set = self._sets[set_idx]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return
        self._fill(cache_set, tag)

    def _fill(self, cache_set: OrderedDict[int, None], tag: int) -> None:
        if len(cache_set) >= self.config.assoc:
            cache_set.popitem(last=False)  # evict LRU
            self.stats.evictions += 1
        cache_set[tag] = None

    def invalidate(self, addr: int) -> bool:
        """Drop a line if present; returns True if it was resident."""
        set_idx, tag = self._index(addr)
        return self._sets[set_idx].pop(tag, "absent") != "absent"

    def flush(self) -> None:
        """Drop every resident line (stats are kept)."""
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        """Zero the counters without touching cache contents."""
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer, pid: int, tid: int) -> None:
        """Instrument *this instance* for a trace session.

        ``access`` is rebound to a wrapper that emits (sampled)
        eviction instants on the given track; timestamps come from the
        session's request-context cycle, which the LD/ST unit stamps
        before descending.  Un-attached caches keep the plain method —
        the disabled-tracer path has no tracing branches at all.
        """
        # Fused instrumentation: the traced variant duplicates
        # ``access``/``_fill`` (keep them in lockstep!) so the hit
        # path pays no wrapper frame, no ``n_sets`` property calls and
        # no eviction-delta re-read; the eviction branch itself knows
        # when to emit.  ``fill``/``lookup``/``invalidate`` stay the
        # plain methods — the original hook never traced them either.
        stats = self.stats
        sets = self._sets
        line_bytes = self.config.line_bytes
        n_sets = self.config.n_sets
        assoc = self.config.assoc
        sampled = tracer.sampled
        attribute = tracer.attribute
        buf_append = tracer._buf.append
        evict_site = tracer.site("cache", f"{self.name} evict", pid, tid,
                                 ph="i")

        def traced_access(addr: int, allocate: bool = True) -> bool:
            stats.accesses += 1
            line = addr // line_bytes
            cache_set = sets[line % n_sets]
            tag = line // n_sets
            if tag in cache_set:
                cache_set.move_to_end(tag)
                stats.hits += 1
                return True
            stats.misses += 1
            if allocate:
                if len(cache_set) >= assoc:
                    cache_set.popitem(last=False)  # evict LRU
                    stats.evictions += 1
                    if sampled() and evict_site >= 0:
                        buf_append((evict_site, tracer.now, 0,
                                    attribute(addr), None))
                cache_set[tag] = None
            else:
                stats.bypassed += 1
            return False

        self.access = traced_access
