"""A-SRAD: Speckle Reducing Anisotropic Diffusion (Rodinia/AxBench).

SRAD precomputes four neighbor-index arrays — ``i_N``/``i_S`` (one
entry per row) and ``i_E``/``i_W`` (one per column) — that every
thread reads to locate its window, making them the hot objects of
Table III.  They are also a distinctive failure mode: a multi-bit
fault in an index entry redirects a whole row/column of reads, and an
index pushed outside the image is an outright crash.

One diffusion iteration, two kernels (Rodinia's ``srad_cuda_1/2``).
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.errors import KernelCrash
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.image import NrmseMetric

# 32x8 thread blocks: one warp per image row segment (coalesced).
CTA_DIM_X = 32
CTA_DIM_Y = 8
LAMBDA = 0.5


class Srad(GpuApplication):
    """Speckle-reducing diffusion; hot: the neighbor-index arrays."""

    name = "A-SRAD"
    suite = "axbench"

    def __init__(self, rows: int = 96, cols: int = 96, seed: int = 1234):
        self.rows = rows
        self.cols = cols
        super().__init__(seed)

    def _make_metric(self) -> NrmseMetric:
        return NrmseMetric()

    @property
    def object_importance(self) -> list[str]:
        return ["i_N", "i_S", "i_E", "i_W", "Image"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"i_N", "i_S", "i_E", "i_W"}

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        i_n = memory.alloc("i_N", (self.rows,), np.int32)
        i_s = memory.alloc("i_S", (self.rows,), np.int32)
        i_e = memory.alloc("i_E", (self.cols,), np.int32)
        i_w = memory.alloc("i_W", (self.cols,), np.int32)
        img = memory.alloc("Image", (self.rows, self.cols), np.float32)
        memory.alloc("J", (self.rows, self.cols), np.float32,
                     read_only=False)
        for d in ("dN", "dS", "dE", "dW", "c"):
            memory.alloc(d, (self.rows, self.cols), np.float32,
                         read_only=False)
        rows_idx = np.arange(self.rows, dtype=np.int32)
        cols_idx = np.arange(self.cols, dtype=np.int32)
        memory.write_object(i_n, np.maximum(rows_idx - 1, 0))
        memory.write_object(
            i_s, np.minimum(rows_idx + 1, self.rows - 1)
        )
        memory.write_object(i_w, np.maximum(cols_idx - 1, 0))
        memory.write_object(
            i_e, np.minimum(cols_idx + 1, self.cols - 1)
        )
        speckled = rng.uniform(0.0, 255.0, size=(self.rows, self.cols))
        memory.write_object(img, speckled.astype(np.float32))

    def _checked_indices(self, raw: np.ndarray, bound: int, name: str) \
            -> np.ndarray:
        idx = raw.astype(np.int64)
        if idx.min() < 0 or idx.max() >= bound:
            raise KernelCrash(
                f"{self.name}: corrupted {name} index "
                f"({idx.min()}..{idx.max()}) outside [0, {bound})"
            )
        return idx

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        i_n = self._checked_indices(
            reader.read(memory.object("i_N")), self.rows, "i_N")
        i_s = self._checked_indices(
            reader.read(memory.object("i_S")), self.rows, "i_S")
        i_e = self._checked_indices(
            reader.read(memory.object("i_E")), self.cols, "i_E")
        i_w = self._checked_indices(
            reader.read(memory.object("i_W")), self.cols, "i_W")
        # Pixel data keeps its uint8 image semantics: clamp on load so a
        # faulted pixel is wrong, not astronomically out of range.
        image = np.clip(
            np.nan_to_num(
                reader.read(memory.object("Image")).astype(np.float64),
                nan=255.0, posinf=255.0, neginf=0.0,
            ),
            0.0, 255.0,
        )

        j = np.exp(image / 255.0)
        memory.write_object(memory.object("J"), j)
        j = memory.read_object(memory.object("J")).astype(np.float64)

        # Guard the degenerate uniform-image case (zero variance):
        # the diffusion coefficient then clips to 1 and J is unchanged.
        q0sqr = max(j.var() / max(j.mean() ** 2, 1e-30), 1e-12)

        # Kernel 1: directional derivatives and the diffusion coefficient.
        with np.errstate(all="ignore"):
            d_n = j[i_n, :] - j
            d_s = j[i_s, :] - j
            d_w = j[:, i_w] - j
            d_e = j[:, i_e] - j
            g2 = (d_n**2 + d_s**2 + d_w**2 + d_e**2) / (j**2)
            lap = (d_n + d_s + d_w + d_e) / j
            num = 0.5 * g2 - (1.0 / 16.0) * lap**2
            den = 1.0 + 0.25 * lap
            qsqr = num / (den**2)
            den2 = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr))
            coeff = np.clip(1.0 / (1.0 + den2), 0.0, 1.0)
        for obj_name, arr in (
            ("dN", d_n), ("dS", d_s), ("dW", d_w), ("dE", d_e),
            ("c", coeff),
        ):
            memory.write_object(memory.object(obj_name), arr)

        # Kernel 2: divergence and image update; coefficients and
        # derivatives are re-read from memory so faults in their blocks
        # propagate.
        coeff = memory.read_object(memory.object("c")).astype(np.float64)
        d_n = memory.read_object(memory.object("dN")).astype(np.float64)
        d_s = memory.read_object(memory.object("dS")).astype(np.float64)
        d_w = memory.read_object(memory.object("dW")).astype(np.float64)
        d_e = memory.read_object(memory.object("dE")).astype(np.float64)
        c_s = coeff[i_s, :]
        c_e = coeff[:, i_e]
        divergence = coeff * d_n + c_s * d_s + coeff * d_w + c_e * d_e
        j = j + 0.25 * LAMBDA * divergence
        memory.write_object(memory.object("J"), j)
        j = memory.read_object(memory.object("J")).astype(np.float64)
        # Rodinia's compress step: the result is written out as an
        # 8-bit image, log(J)*255 clamped to [0, 255].  This is the
        # checked output, so (as on the real benchmark) a wildly
        # corrupted J value saturates instead of dominating the NRMSE.
        with np.errstate(all="ignore"):
            compressed = np.log(np.maximum(j, 1e-30)) * 255.0
        compressed = np.nan_to_num(
            compressed, nan=0.0, posinf=255.0, neginf=0.0)
        return np.clip(compressed, 0.0, 255.0).astype(np.float32)

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        objs = {
            name: memory.object(name)
            for name in (
                "i_N", "i_S", "i_E", "i_W", "J", "dN", "dS", "dW", "dE", "c"
            )
        }
        k0 = self._prep_kernel(memory)
        k1 = self._kernel(objs, first=True)
        k2 = self._kernel(objs, first=False)
        return AppTrace(self.name, [k0, k1, k2])

    def _prep_kernel(self, memory: DeviceMemory) -> KernelTrace:
        """The extract kernel: J = exp(Image/255) — one coalesced pass
        reading Image and writing J."""
        image = memory.object("Image")
        j = memory.object("J")
        kernel = KernelTrace("srad_extract")
        warp_id = 0
        cta_id = 0
        n_pixels = self.rows * self.cols
        for cta_first, cta_threads in common.ctas_of_threads(n_pixels, 256):
            cta = CtaTrace(cta_id)
            cta_id += 1
            for first, lanes in common.warp_partition(cta_threads):
                p0 = cta_first + first
                insts: list = [
                    Compute(2),
                    Load("Image",
                         common.contiguous_blocks(image, p0, lanes)),
                    Compute(3, wait=True),  # divide + exp
                    Store("J", common.contiguous_blocks(j, p0, lanes)),
                ]
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            kernel.ctas.append(cta)
        return kernel

    def _kernel(self, objs, first: bool) -> KernelTrace:
        kernel = KernelTrace("srad_cuda_1" if first else "srad_cuda_2")
        j = objs["J"]
        warp_id = 0
        cta_id = 0
        for cy in range(0, self.rows, CTA_DIM_Y):
            for cx in range(0, self.cols, CTA_DIM_X):
                cta = CtaTrace(cta_id)
                cta_id += 1
                for wy in range(cy, min(cy + CTA_DIM_Y, self.rows)):
                    n_cols = min(CTA_DIM_X, self.cols - cx)
                    lane_r = np.full(n_cols, wy, dtype=np.int64)
                    lane_c = np.arange(cx, cx + n_cols, dtype=np.int64)
                    center = lane_r * self.cols + lane_c
                    north = np.maximum(lane_r - 1, 0) * self.cols + lane_c
                    south = (
                        np.minimum(lane_r + 1, self.rows - 1) * self.cols
                        + lane_c
                    )
                    west = lane_r * self.cols + np.maximum(lane_c - 1, 0)
                    east = lane_r * self.cols + np.minimum(
                        lane_c + 1, self.cols - 1)
                    insts: list = [Compute(4)]
                    if first:
                        for idx_name, idx in (
                            ("i_N", wy), ("i_S", wy),
                            ("i_E", cx), ("i_W", cx),
                        ):
                            insts.append(Load(
                                idx_name,
                                (common.block_addr(objs[idx_name], idx),),
                            ))
                        for flat in (center, north, south, west, east):
                            insts.append(
                                Load("J", common.scattered_blocks(j, flat)))
                        insts.append(Compute(10, wait=True))
                        for name in ("dN", "dS", "dW", "dE", "c"):
                            insts.append(Store(
                                name,
                                common.scattered_blocks(objs[name], center),
                            ))
                    else:
                        insts.append(Load(
                            "i_S", (common.block_addr(objs["i_S"], wy),)))
                        insts.append(Load(
                            "i_E", (common.block_addr(objs["i_E"], cx),)))
                        insts.append(Load(
                            "c", common.scattered_blocks(objs["c"], center)))
                        insts.append(Load(
                            "c", common.scattered_blocks(objs["c"], south)))
                        insts.append(Load(
                            "c", common.scattered_blocks(objs["c"], east)))
                        for name, flat in (
                            ("dN", center), ("dS", center),
                            ("dW", center), ("dE", center),
                        ):
                            insts.append(Load(
                                name,
                                common.scattered_blocks(objs[name], flat),
                            ))
                        insts.append(Load(
                            "J", common.scattered_blocks(j, center)))
                        insts.append(Compute(6, wait=True))
                        insts.append(Store(
                            "J", common.scattered_blocks(j, center)))
                    cta.warps.append(WarpTrace(warp_id, insts))
                    warp_id += 1
                kernel.ctas.append(cta)
        return kernel
