"""C-BlackScholes: European option pricing (CUDA-SDK).

The counter-example application of Figure 3(g): one thread per
option, each input array read exactly once with perfectly coalesced
unit-stride accesses — so every memory block receives the same number
of transactions and there are *no* hot blocks to protect.
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.vector import VectorDeviationMetric

CTA_SIZE = 256
RISK_FREE = 0.02
VOLATILITY = 0.30


def _cnd(d: np.ndarray) -> np.ndarray:
    """Cumulative normal distribution (polynomial approximation used by
    the CUDA-SDK sample)."""
    a1, a2, a3 = 0.31938153, -0.356563782, 1.781477937
    a4, a5 = -1.821255978, 1.330274429
    rsqrt2pi = 0.39894228040143267794
    k = 1.0 / (1.0 + 0.2316419 * np.abs(d))
    cnd = rsqrt2pi * np.exp(-0.5 * d * d) * (
        k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))))
    )
    return np.where(d > 0, 1.0 - cnd, cnd)


class BlackScholes(GpuApplication):
    """European option pricing; perfectly flat access profile."""

    name = "C-BlackScholes"
    suite = "cuda-sdk"

    def __init__(self, n_options: int = 4096, seed: int = 1234):
        self.n_options = n_options
        super().__init__(seed)

    def _make_metric(self) -> VectorDeviationMetric:
        return VectorDeviationMetric(threshold=0.0)

    @property
    def object_importance(self) -> list[str]:
        return ["StockPrice", "OptionStrike", "OptionYears"]

    @property
    def hot_object_names(self) -> set[str]:
        return set()  # the point of this app: no hot blocks exist

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        n = self.n_options
        s = memory.alloc("StockPrice", (n,), np.float32)
        x = memory.alloc("OptionStrike", (n,), np.float32)
        t = memory.alloc("OptionYears", (n,), np.float32)
        memory.alloc("CallResult", (n,), np.float32, read_only=False)
        memory.alloc("PutResult", (n,), np.float32, read_only=False)
        memory.write_object(s, rng.uniform(5.0, 30.0, size=n))
        memory.write_object(x, rng.uniform(1.0, 100.0, size=n))
        memory.write_object(t, rng.uniform(0.25, 10.0, size=n))

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        s = reader.read(memory.object("StockPrice")).astype(np.float64)
        x = reader.read(memory.object("OptionStrike")).astype(np.float64)
        t = reader.read(memory.object("OptionYears")).astype(np.float64)
        with np.errstate(all="ignore"):
            sqrt_t = np.sqrt(t)
            d1 = (np.log(s / x) + (RISK_FREE + 0.5 * VOLATILITY**2) * t) \
                / (VOLATILITY * sqrt_t)
            d2 = d1 - VOLATILITY * sqrt_t
            expr = np.exp(-RISK_FREE * t)
            call = s * _cnd(d1) - x * expr * _cnd(d2)
            put = x * expr * _cnd(-d2) - s * _cnd(-d1)
        memory.write_object(memory.object("CallResult"), call)
        memory.write_object(memory.object("PutResult"), put)
        call_out = memory.read_object(memory.object("CallResult"))
        put_out = memory.read_object(memory.object("PutResult"))
        return np.concatenate([call_out, put_out])

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        objs = {
            name: memory.object(name)
            for name in (
                "StockPrice", "OptionStrike", "OptionYears",
                "CallResult", "PutResult",
            )
        }
        kernel = KernelTrace("BlackScholesGPU")
        warp_id = 0
        for cta_id, (cta_first, cta_threads) in enumerate(
            common.ctas_of_threads(self.n_options, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for first, lanes in common.warp_partition(cta_threads):
                t0 = cta_first + first
                insts: list = [Compute(2)]
                for name in ("StockPrice", "OptionStrike", "OptionYears"):
                    insts.append(Load(
                        name,
                        common.contiguous_blocks(objs[name], t0, lanes)))
                insts.append(Compute(24, wait=True))  # CND evaluations
                for name in ("CallResult", "PutResult"):
                    insts.append(Store(
                        name,
                        common.contiguous_blocks(objs[name], t0, lanes)))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            kernel.ctas.append(cta)
        return AppTrace(self.name, [kernel])
