"""Shared helpers for kernel trace generation.

Trace generation is the hottest Python path in the library (millions
of transactions for the larger apps), so these helpers compute block
addresses arithmetically where the access pattern makes the answer
obvious, instead of round-tripping through the generic coalescer.
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import BLOCK_BYTES, DataObject

WARP_SIZE = 32


def block_addr(obj: DataObject, flat_index: int) -> int:
    """Block base address holding flat element ``flat_index``."""
    byte = obj.base_addr + flat_index * obj.dtype.itemsize
    return (byte // BLOCK_BYTES) * BLOCK_BYTES


def contiguous_blocks(
    obj: DataObject, start_index: int, n_elements: int
) -> tuple[int, ...]:
    """Blocks touched by ``n_elements`` consecutive elements."""
    itemsize = obj.dtype.itemsize
    first = (obj.base_addr + start_index * itemsize) // BLOCK_BYTES
    last = (
        obj.base_addr + (start_index + n_elements - 1) * itemsize
    ) // BLOCK_BYTES
    return tuple(b * BLOCK_BYTES for b in range(first, last + 1))


def scattered_blocks(obj: DataObject, flat_indices) -> tuple[int, ...]:
    """Blocks for arbitrary lane indices (de-duplicated, sorted)."""
    idx = np.asarray(flat_indices, dtype=np.int64)
    byte_addrs = obj.base_addr + idx * obj.dtype.itemsize
    blocks = np.unique(byte_addrs // BLOCK_BYTES)
    return tuple(int(b) * BLOCK_BYTES for b in blocks)


def warp_partition(n_threads: int) -> list[tuple[int, int]]:
    """Split a 1-D thread range into (first_tid, n_lanes) warps."""
    warps = []
    tid = 0
    while tid < n_threads:
        lanes = min(WARP_SIZE, n_threads - tid)
        warps.append((tid, lanes))
        tid += lanes
    return warps


def ctas_of_threads(n_threads: int, cta_size: int) -> list[tuple[int, int]]:
    """Split a 1-D grid into (first_tid, n_threads_in_cta) CTAs."""
    if cta_size <= 0:
        raise ValueError("cta_size must be positive")
    ctas = []
    tid = 0
    while tid < n_threads:
        size = min(cta_size, n_threads - tid)
        ctas.append((tid, size))
        tid += size
    return ctas
