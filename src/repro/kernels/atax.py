"""P-ATAX: y = A^T (A x) (Polybench-GPU) — an extension workload.

Not part of the paper's evaluated set; included to show the framework
generalizes: the access structure mirrors P-BICG/P-GESUMMV (the
vector ``x`` broadcasts warp-wide while ``A`` streams, uncoalesced in
kernel 1 and coalesced in kernel 2), so ``x`` is the hot object and
partial replication should protect it for ~free.

    atax_kernel1: tmp[i] = sum_j a[i*n + j] * x[j]
    atax_kernel2: y[j] += a[i*n + j] * tmp[i]
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.errors import FaultDetected, KernelCrash
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.vector import VectorDeviationMetric

CTA_SIZE = 256


class Atax(GpuApplication):
    """y = A^T (A x); hot object: the broadcast vector x."""

    name = "P-ATAX"
    suite = "polybench"

    def __init__(self, n: int = 384, seed: int = 1234):
        self.n = n
        super().__init__(seed)

    def _make_metric(self) -> VectorDeviationMetric:
        return VectorDeviationMetric()

    @property
    def object_importance(self) -> list[str]:
        return ["x", "A"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"x"}

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        a = memory.alloc("A", (self.n, self.n), np.float32)
        x = memory.alloc("x", (self.n,), np.float32)
        memory.alloc("tmp", (self.n,), np.float32, read_only=False)
        memory.alloc("y", (self.n,), np.float32, read_only=False)
        memory.write_object(
            a, rng.uniform(-1.0, 1.0, size=(self.n, self.n)))
        memory.write_object(x, rng.uniform(-1.0, 1.0, size=self.n))

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        a = reader.read(memory.object("A"))
        x = reader.read(memory.object("x"))
        with np.errstate(all="ignore"):  # faulted inputs may overflow
            tmp = (a @ x).astype(np.float32)
        memory.write_object(memory.object("tmp"), tmp)
        # Kernel 2 re-reads tmp from memory, so faults in its blocks
        # propagate into y.
        tmp_back = memory.read_object(memory.object("tmp"))
        with np.errstate(all="ignore"):
            y = (a.T @ tmp_back).astype(np.float32)
        memory.write_object(memory.object("y"), y)
        return memory.read_object(memory.object("y"))

    def execute_batch(self, memories, readers) -> list:
        # Stacked (N, n, n) sweeps, bitwise identical to the scalar
        # path including the tmp write/read-back between the kernels.
        results: list = [None] * len(memories)
        live, a_rows, x_rows = [], [], []
        for i, (memory, reader) in enumerate(zip(memories, readers)):
            try:
                a = reader.read(memory.object("A"))
                x = reader.read(memory.object("x"))
            except (FaultDetected, KernelCrash) as exc:
                results[i] = exc
                continue
            live.append(i)
            a_rows.append(a)
            x_rows.append(x)
        if live:
            a_b = np.stack(a_rows)
            x_b = np.stack(x_rows)
            with np.errstate(all="ignore"):
                tmp_b = np.matmul(
                    a_b, x_b[:, :, None]
                )[:, :, 0].astype(np.float32)
            tmp_back = []
            for k, i in enumerate(live):
                memory = memories[i]
                memory.write_object(memory.object("tmp"), tmp_b[k])
                tmp_back.append(
                    memory.read_object(memory.object("tmp")))
            t_b = np.stack(tmp_back)
            with np.errstate(all="ignore"):
                y_b = np.matmul(
                    a_b.transpose(0, 2, 1), t_b[:, :, None]
                )[:, :, 0].astype(np.float32)
            for k, i in enumerate(live):
                memory = memories[i]
                memory.write_object(memory.object("y"), y_b[k])
                results[i] = memory.read_object(memory.object("y"))
        return results

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        a = memory.object("A")
        x = memory.object("x")
        tmp = memory.object("tmp")
        y = memory.object("y")

        # Kernel 1: thread per row i; A uncoalesced, x broadcast.
        k1 = KernelTrace("atax_kernel1")
        warp_id = 0
        for cta_id, (cta_first, cta_threads) in enumerate(
            common.ctas_of_threads(self.n, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for first_i, lanes in common.warp_partition(cta_threads):
                i0 = cta_first + first_i
                lane_rows = np.arange(i0, i0 + lanes, dtype=np.int64)
                insts: list = [Compute(3)]
                for j in range(self.n):
                    insts.append(Load("A", common.scattered_blocks(
                        a, lane_rows * self.n + j)))
                    insts.append(Load("x", (common.block_addr(x, j),)))
                    insts.append(Compute(2, wait=True))
                insts.append(Store(
                    "tmp", common.contiguous_blocks(tmp, i0, lanes)))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            k1.ctas.append(cta)

        # Kernel 2: thread per column j; A coalesced, tmp broadcast.
        k2 = KernelTrace("atax_kernel2")
        warp_id = 0
        for cta_id, (cta_first, cta_threads) in enumerate(
            common.ctas_of_threads(self.n, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for first_j, lanes in common.warp_partition(cta_threads):
                j0 = cta_first + first_j
                insts = [Compute(3)]
                for i in range(self.n):
                    insts.append(Load("A", common.contiguous_blocks(
                        a, i * self.n + j0, lanes)))
                    insts.append(Load(
                        "tmp", (common.block_addr(tmp, i),)))
                    insts.append(Compute(2, wait=True))
                insts.append(Store(
                    "y", common.contiguous_blocks(y, j0, lanes)))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            k2.ctas.append(cta)

        return AppTrace(self.name, [k1, k2])
