"""A-Meanfilter: 3x3 box smoothing filter (AxBench).

No coefficient array — the kernel averages the window directly — so
the hot objects are just the ``Filter_Height``/``Filter_Width`` bounds
scalars, re-read once per window row (Table III reports they absorb
~40% of all read transactions despite being 8 bytes of data).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.stencil import StencilApp, convolve3x3

MEAN = np.full((3, 3), 1.0 / 9.0, dtype=np.float64)


class Meanfilter(StencilApp):
    """3x3 box smoothing; hot: the bounds scalars."""

    name = "A-Meanfilter"
    filter_elements = 0

    @property
    def object_importance(self) -> list[str]:
        return ["Filter_Height", "Filter_Width", "Image"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"Filter_Height", "Filter_Width"}

    def _filter_values(self) -> None:
        return None

    def _tap_loads(self) -> list[str]:
        return []

    def _per_row_loads(self) -> list[str]:
        return ["Filter_Height", "Filter_Width"]

    def _apply(self, image: np.ndarray, coeffs) -> np.ndarray:
        out = convolve3x3(image, MEAN)
        return np.clip(out, 0.0, 255.0).astype(np.float32)
