"""Warp-level memory trace representation.

A trace is the sequence of instructions each warp issues, with memory
instructions already coalesced into 128-byte block transactions (the
granularity at which the L1, L2 and DRAM operate and at which the
paper counts accesses).

Instruction kinds:

* :class:`Compute` — ``count`` back-to-back single-issue ALU
  instructions; if ``wait`` is true the warp must first drain its
  outstanding demand loads (scoreboard load-use dependency).
* :class:`Load` — a read of ``obj`` generating one transaction per
  address in ``addrs`` (block-aligned byte addresses).
* :class:`Store` — write-through store transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from repro.errors import TraceError


class Compute(NamedTuple):
    count: int
    wait: bool = False


class Load(NamedTuple):
    obj: str
    addrs: tuple[int, ...]


class Store(NamedTuple):
    obj: str
    addrs: tuple[int, ...]


Instruction = Compute | Load | Store


@dataclass
class WarpTrace:
    """One warp's instruction stream.  ``warp_id`` is unique within its
    kernel; ``active_lanes`` records divergence for bookkeeping."""

    warp_id: int
    insts: list[Instruction] = field(default_factory=list)

    def validate(self) -> None:
        """Raise TraceError on malformed instructions."""
        for i, inst in enumerate(self.insts):
            if isinstance(inst, Compute):
                if inst.count <= 0:
                    raise TraceError(
                        f"warp {self.warp_id} inst {i}: "
                        f"compute count {inst.count} must be positive"
                    )
            elif isinstance(inst, (Load, Store)):
                if not inst.addrs:
                    raise TraceError(
                        f"warp {self.warp_id} inst {i}: empty address list"
                    )
                for addr in inst.addrs:
                    if addr < 0:
                        raise TraceError(
                            f"warp {self.warp_id} inst {i}: "
                            f"negative address {addr}"
                        )
            else:
                raise TraceError(
                    f"warp {self.warp_id} inst {i}: unknown kind "
                    f"{type(inst).__name__}"
                )

    @property
    def n_load_transactions(self) -> int:
        return sum(
            len(inst.addrs) for inst in self.insts if isinstance(inst, Load)
        )


@dataclass
class CtaTrace:
    """A co-operative thread array: the unit of SM assignment."""

    cta_id: int
    warps: list[WarpTrace] = field(default_factory=list)


@dataclass
class KernelTrace:
    """One kernel launch: a grid of CTAs."""

    name: str
    ctas: list[CtaTrace] = field(default_factory=list)

    @property
    def n_warps(self) -> int:
        return sum(len(cta.warps) for cta in self.ctas)

    def iter_warps(self) -> Iterator[WarpTrace]:
        """All warps in CTA order."""
        for cta in self.ctas:
            yield from cta.warps

    def validate(self) -> None:
        """Check warp-id uniqueness and per-warp well-formedness."""
        seen: set[int] = set()
        for warp in self.iter_warps():
            if warp.warp_id in seen:
                raise TraceError(
                    f"kernel {self.name}: duplicate warp id {warp.warp_id}"
                )
            seen.add(warp.warp_id)
            warp.validate()


@dataclass
class AppTrace:
    """The full application: kernels launched in order."""

    app_name: str
    kernels: list[KernelTrace] = field(default_factory=list)

    def validate(self) -> None:
        """Validate every kernel; an app needs at least one."""
        if not self.kernels:
            raise TraceError(f"{self.app_name}: trace has no kernels")
        for kernel in self.kernels:
            kernel.validate()

    @property
    def total_load_transactions(self) -> int:
        return sum(
            warp.n_load_transactions
            for kernel in self.kernels
            for warp in kernel.iter_warps()
        )

    def iter_loads(self) -> Iterator[tuple[str, int, Load]]:
        """Yield (kernel name, warp id, load) for every load."""
        for kernel in self.kernels:
            for warp in kernel.iter_warps():
                for inst in warp.insts:
                    if isinstance(inst, Load):
                        yield kernel.name, warp.warp_id, inst
