"""Shared machinery for the AxBench image-filter applications
(A-Laplacian, A-Meanfilter, A-Sobel).

These kernels launch one thread per pixel in 16x16 CTAs and walk a
3x3 window.  Per tap they re-read the filter coefficients and the
image bounds (``Filter_Height``/``Filter_Width``) — scalar objects
that each live in a single memory block — which is why those tiny
objects absorb ~73% of all read transactions (Table III) while the
image itself, though orders of magnitude larger, is touched only ~9
times per block.

Faults in the bounds scalars are interesting failure modes: a
corrupted ``height`` that still fits the allocation silently truncates
the output (SDC); one that exceeds it would walk off the allocation,
which we surface as :class:`~repro.errors.KernelCrash`.
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.errors import KernelCrash
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.image import NrmseMetric

# 32x8 thread blocks: each warp covers one full row of 32 pixels, the
# standard geometry for coalesced image kernels.
CTA_DIM_X = 32
CTA_DIM_Y = 8


class StencilApp(GpuApplication):
    """Base class for the 3x3-window AxBench filters."""

    suite = "axbench"
    #: Subclasses with a coefficient object set this to its length.
    filter_elements: int = 0

    def __init__(self, height: int = 96, width: int = 96, seed: int = 1234):
        self.height = height
        self.width = width
        super().__init__(seed)

    def _make_metric(self) -> NrmseMetric:
        return NrmseMetric()

    # -- subclass contract --------------------------------------------------
    def _filter_values(self) -> np.ndarray | None:
        """Coefficient array for the Filter object (None = no filter)."""
        return None

    def _apply(self, image: np.ndarray, coeffs: np.ndarray | None) \
            -> np.ndarray:
        """The filter math on a (h, w) image; returns the output image."""
        raise NotImplementedError

    def _tap_loads(self) -> list[str]:
        """Objects re-read per window tap, e.g. ["Filter", "Filter_Height",
        "Filter_Width"].  The image load per tap is implicit."""
        raise NotImplementedError

    def _per_row_loads(self) -> list[str]:
        """Objects re-read once per window *row* instead of per tap."""
        return []

    # -- common implementation ----------------------------------------------
    def setup(self, memory: DeviceMemory) -> None:
        """Allocate filter/bounds/image objects and synthesize input."""
        rng = self.rng(0)
        coeffs = self._filter_values()
        if coeffs is not None:
            filt = memory.alloc("Filter", (coeffs.size,), np.float32)
            memory.write_object(filt, coeffs)
        h = memory.alloc("Filter_Height", (1,), np.int32)
        w = memory.alloc("Filter_Width", (1,), np.int32)
        img = memory.alloc("Image", (self.height, self.width), np.float32)
        memory.alloc(
            "Output", (self.height, self.width), np.float32, read_only=False
        )
        memory.write_object(h, np.array([self.height], dtype=np.int32))
        memory.write_object(w, np.array([self.width], dtype=np.int32))
        # A smooth gradient plus texture: edges for Sobel to find, noise
        # for the smoothing filters to remove.
        yy, xx = np.mgrid[0:self.height, 0:self.width]
        base = 96.0 * (xx / max(self.width - 1, 1))
        base += 64.0 * ((yy // 12) % 2)  # horizontal bands => strong edges
        noise = rng.uniform(-12.0, 12.0, size=(self.height, self.width))
        memory.write_object(
            img, np.clip(base + noise, 0.0, 255.0).astype(np.float32)
        )

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        """Run the filter; corrupted bounds truncate or crash."""
        h = int(reader.read(memory.object("Filter_Height"))[0])
        w = int(reader.read(memory.object("Filter_Width"))[0])
        if h <= 0 or w <= 0 or h > self.height or w > self.width:
            raise KernelCrash(
                f"{self.name}: corrupted bounds {h}x{w} walk outside the "
                f"{self.height}x{self.width} allocation"
            )
        # Pixel data has uint8 image semantics: values are clamped to
        # [0, 255] on load (a faulted pixel can be wrong, but not 1e38).
        image = np.clip(
            np.nan_to_num(
                reader.read(memory.object("Image")), nan=255.0,
                posinf=255.0, neginf=0.0,
            ),
            0.0, 255.0,
        )
        coeffs = None
        if self.filter_elements:
            coeffs = reader.read(memory.object("Filter"))
        out = np.zeros((self.height, self.width), dtype=np.float32)
        out[:h, :w] = self._apply(image[:h, :w], coeffs)
        memory.write_object(memory.object("Output"), out)
        return memory.read_object(memory.object("Output"))

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        """One 32x8-CTA kernel: per-tap coefficient/bounds re-reads."""
        img = memory.object("Image")
        out = memory.object("Output")
        tap_objs = [
            (name, memory.object(name)) for name in self._tap_loads()
        ]
        row_objs = [
            (name, memory.object(name)) for name in self._per_row_loads()
        ]

        kernel = KernelTrace(f"{self.name.lower()}_kernel")
        warp_id = 0
        cta_id = 0
        for cy in range(0, self.height, CTA_DIM_Y):
            for cx in range(0, self.width, CTA_DIM_X):
                cta = CtaTrace(cta_id)
                cta_id += 1
                for wy in range(cy, min(cy + CTA_DIM_Y, self.height)):
                    cols = min(CTA_DIM_X, self.width - cx)
                    insts: list = [Compute(4)]
                    lane_y = np.full(cols, wy, dtype=np.int64)
                    lane_x = np.arange(cx, cx + cols, dtype=np.int64)
                    for dy in (-1, 0, 1):
                        for name, obj in row_objs:
                            insts.append(
                                Load(name, (common.block_addr(obj, 0),))
                            )
                        for dx in (-1, 0, 1):
                            tap = (dy + 1) * 3 + (dx + 1)
                            for name, obj in tap_objs:
                                idx = tap if name == "Filter" else 0
                                insts.append(
                                    Load(name,
                                         (common.block_addr(obj, idx),))
                                )
                            y = np.clip(lane_y + dy, 0, self.height - 1)
                            x = np.clip(lane_x + dx, 0, self.width - 1)
                            in_bounds = (
                                (lane_y + dy >= 0)
                                & (lane_y + dy < self.height)
                                & (lane_x + dx >= 0)
                                & (lane_x + dx < self.width)
                            )
                            if in_bounds.any():
                                flat = (y * self.width + x)[in_bounds]
                                insts.append(
                                    Load("Image",
                                         common.scattered_blocks(img, flat))
                                )
                            insts.append(Compute(2, wait=True))
                    insts.append(Compute(2))
                    insts.append(
                        Store(
                            "Output",
                            common.scattered_blocks(
                                out, lane_y * self.width + lane_x
                            ),
                        )
                    )
                    cta.warps.append(WarpTrace(warp_id, insts))
                    warp_id += 1
                kernel.ctas.append(cta)

        return AppTrace(self.name, [kernel])


def convolve3x3(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Zero-padded 3x3 convolution (correlation, matching the CUDA code)."""
    h, w = image.shape
    padded = np.zeros((h + 2, w + 2), dtype=np.float64)
    padded[1:-1, 1:-1] = image
    out = np.zeros((h, w), dtype=np.float64)
    # Corrupted coefficients can be inf/NaN; the arithmetic must carry
    # them through silently (the metric classifies non-finite output).
    with np.errstate(all="ignore"):
        for dy in range(3):
            for dx in range(3):
                out += kernel[dy, dx] * padded[dy:dy + h, dx:dx + w]
    return out
