"""Memory-access coalescing: lane addresses -> block transactions.

A warp's 32 lanes each compute a byte address; the LD/ST unit merges
addresses falling in the same 128-byte block into a single memory
transaction.  This is where the paper's access-count structure comes
from:

* a broadcast (``r[i]``, all lanes read the same element) is 1
  transaction;
* a unit-stride access (``A[i*NY + j]`` with ``j`` the lane index, 4B
  elements) spans exactly one block: 1 transaction;
* a stride-2 access spans two blocks: 2 transactions;
* a column-major access (stride >= 128B, e.g. ``a[i*n + j]`` with
  ``i`` the lane index) degenerates to one transaction per lane: 32.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.arch.address_space import BLOCK_BYTES, DataObject
from repro.errors import TraceError


def coalesce_indices(
    obj: DataObject, lane_indices: Sequence[int] | np.ndarray
) -> tuple[int, ...]:
    """Coalesce per-lane flat element indices into block transactions.

    ``lane_indices`` holds one flat element index per active lane
    (inactive lanes are simply omitted — predicated-off lanes issue no
    address).  Returns the sorted, de-duplicated block base addresses.
    """
    idx = np.asarray(lane_indices, dtype=np.int64)
    if idx.size == 0:
        raise TraceError(f"coalesce on {obj.name}: no active lanes")
    n_elements = int(np.prod(obj.shape, dtype=np.int64))
    if idx.min() < 0 or idx.max() >= n_elements:
        raise TraceError(
            f"coalesce on {obj.name}: lane index outside "
            f"[0, {n_elements}) (got {idx.min()}..{idx.max()})"
        )
    byte_addrs = obj.base_addr + idx * obj.dtype.itemsize
    blocks = np.unique(byte_addrs // BLOCK_BYTES) * BLOCK_BYTES
    return tuple(int(b) for b in blocks)


def broadcast_transaction(obj: DataObject, flat_index: int) -> tuple[int]:
    """The single transaction of a warp-wide broadcast load."""
    return coalesce_indices(obj, [flat_index])  # type: ignore[return-value]


def strided_transactions(
    obj: DataObject, start: int, stride: int, lanes: int
) -> tuple[int, ...]:
    """Transactions for lanes reading ``start + lane*stride`` elements."""
    if lanes <= 0:
        raise TraceError("strided access needs at least one lane")
    indices = start + stride * np.arange(lanes, dtype=np.int64)
    return coalesce_indices(obj, indices)
