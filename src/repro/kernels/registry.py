"""Application registry: construct any evaluated workload by name.

``APPLICATIONS`` holds the eight resilience-study applications
(Table II); ``FLAT_APPLICATIONS`` holds the two counter-examples whose
flat access profiles (Figure 3(g)-(h)) exclude them from the study.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError, UnknownAppError
from repro.kernels.atax import Atax
from repro.kernels.base import GpuApplication
from repro.kernels.bicg import Bicg
from repro.kernels.blackscholes import BlackScholes
from repro.kernels.cnn import Cnn
from repro.kernels.gesummv import Gesummv
from repro.kernels.gramschmidt import GramSchmidt
from repro.kernels.laplacian import Laplacian
from repro.kernels.meanfilter import Meanfilter
from repro.kernels.mvt import Mvt
from repro.kernels.sobel import Sobel
from repro.kernels.srad import Srad

#: The applications of the resilience study (paper Table II order).
APPLICATIONS: dict[str, Callable[..., GpuApplication]] = {
    "C-NN": Cnn,
    "P-BICG": Bicg,
    "P-GESUMMV": Gesummv,
    "P-MVT": Mvt,
    "A-Laplacian": Laplacian,
    "A-Meanfilter": Meanfilter,
    "A-Sobel": Sobel,
    "A-SRAD": Srad,
}

#: Applications with flat access profiles (no hot blocks), Figure 3(g)-(h).
FLAT_APPLICATIONS: dict[str, Callable[..., GpuApplication]] = {
    "C-BlackScholes": BlackScholes,
    "P-GRAMSCHM": GramSchmidt,
}

#: Extension workloads beyond the paper's evaluated set, included to
#: demonstrate that the framework generalizes.
EXTENDED_APPLICATIONS: dict[str, Callable[..., GpuApplication]] = {
    "P-ATAX": Atax,
}

_SMALL_OVERRIDES: dict[str, dict] = {
    "C-NN": {"batch": 8},
    "P-BICG": {"nx": 96, "ny": 96},
    "P-GESUMMV": {"n": 96},
    "P-MVT": {"n": 96},
    "A-Laplacian": {"height": 48, "width": 48},
    "A-Meanfilter": {"height": 48, "width": 48},
    "A-Sobel": {"height": 48, "width": 48},
    "A-SRAD": {"rows": 48, "cols": 48},
    "C-BlackScholes": {"n_options": 1024},
    "P-GRAMSCHM": {"n": 48},
    "P-ATAX": {"n": 96},
}


def create_app(
    name: str, scale: str = "default", seed: int = 1234, **kwargs
) -> GpuApplication:
    """Instantiate an application by its paper name.

    ``scale`` is ``"default"`` (the sizes documented in DESIGN.md) or
    ``"small"`` (fast sizes for tests and smoke runs).  Explicit
    ``kwargs`` override either.
    """
    factory = (
        APPLICATIONS.get(name)
        or FLAT_APPLICATIONS.get(name)
        or EXTENDED_APPLICATIONS.get(name)
    )
    if factory is None:
        known = (sorted(APPLICATIONS) + sorted(FLAT_APPLICATIONS)
                 + sorted(EXTENDED_APPLICATIONS))
        raise UnknownAppError(name, known)
    if scale == "default":
        params: dict = {}
    elif scale == "small":
        params = dict(_SMALL_OVERRIDES[name])
    else:
        raise ConfigError(f"unknown scale {scale!r} (default|small)")
    params.update(kwargs)
    return factory(seed=seed, **params)


def resilience_apps(scale: str = "default", seed: int = 1234) \
        -> list[GpuApplication]:
    """All eight resilience-study applications, constructed."""
    return [create_app(name, scale=scale, seed=seed) for name in APPLICATIONS]
