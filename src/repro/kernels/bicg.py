"""P-BICG: the BiCG sub-kernel of BiCGStab (Polybench-GPU).

Two kernels (the first is Listing 1 of the paper):

* ``bicg_kernel1``: ``s[j] = sum_i A[i*NY+j] * r[i]`` — thread per
  column ``j``.  ``A`` is row-coalesced (one transaction per warp per
  row) and ``r[i]`` is a warp-wide broadcast, so the few blocks of
  ``r`` absorb as many transactions as the whole of ``A``.
* ``bicg_kernel2``: ``q[i] = sum_j A[i*NY+j] * p[j]`` — thread per row
  ``i``.  Here ``A[i*NY+j]`` has lane stride ``NY`` (column-major from
  the warp's viewpoint): 32 uncoalesced transactions per load, while
  ``p[j]`` broadcasts.

Hot objects: ``p`` and ``r`` (Table III), together a vanishing
fraction of the footprint but ~5.7% of all transactions.
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.errors import FaultDetected, KernelCrash
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.vector import VectorDeviationMetric

CTA_SIZE = 256


class Bicg(GpuApplication):
    """The BiCG sub-kernel (Listing 1); hot objects: p and r."""

    name = "P-BICG"
    suite = "polybench"

    def __init__(self, nx: int = 384, ny: int = 384, seed: int = 1234):
        self.nx = nx
        self.ny = ny
        super().__init__(seed)

    def _make_metric(self) -> VectorDeviationMetric:
        return VectorDeviationMetric()

    @property
    def object_importance(self) -> list[str]:
        return ["p", "r", "A"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"p", "r"}

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        a = memory.alloc("A", (self.nx, self.ny), np.float32)
        r = memory.alloc("r", (self.nx,), np.float32)
        p = memory.alloc("p", (self.ny,), np.float32)
        memory.alloc("s", (self.ny,), np.float32, read_only=False)
        memory.alloc("q", (self.nx,), np.float32, read_only=False)
        memory.write_object(
            a, rng.uniform(-1.0, 1.0, size=(self.nx, self.ny))
        )
        memory.write_object(r, rng.uniform(-1.0, 1.0, size=self.nx))
        memory.write_object(p, rng.uniform(-1.0, 1.0, size=self.ny))

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        a = reader.read(memory.object("A"))
        r = reader.read(memory.object("r"))
        p = reader.read(memory.object("p"))
        with np.errstate(all="ignore"):  # faulted inputs may overflow
            s = (a.T @ r).astype(np.float32)
            q = (a @ p).astype(np.float32)
        memory.write_object(memory.object("s"), s)
        memory.write_object(memory.object("q"), q)
        s_out = memory.read_object(memory.object("s"))
        q_out = memory.read_object(memory.object("q"))
        return np.concatenate([s_out, q_out])

    def execute_batch(self, memories, readers) -> list:
        # One stacked (N, nx, ny) matmul per kernel instead of N scalar
        # passes.  The batched matmul forms used here are bitwise
        # identical to the scalar ``@`` (same pairwise-sum reduction);
        # the determinism regression tests pin that equivalence.
        results: list = [None] * len(memories)
        live, a_rows, r_rows, p_rows = [], [], [], []
        for i, (memory, reader) in enumerate(zip(memories, readers)):
            try:
                a = reader.read(memory.object("A"))
                r = reader.read(memory.object("r"))
                p = reader.read(memory.object("p"))
            except (FaultDetected, KernelCrash) as exc:
                results[i] = exc
                continue
            live.append(i)
            a_rows.append(a)
            r_rows.append(r)
            p_rows.append(p)
        if live:
            a_b = np.stack(a_rows)
            r_b = np.stack(r_rows)
            p_b = np.stack(p_rows)
            with np.errstate(all="ignore"):
                s_b = np.matmul(
                    a_b.transpose(0, 2, 1), r_b[:, :, None]
                )[:, :, 0].astype(np.float32)
                q_b = np.matmul(
                    a_b, p_b[:, :, None]
                )[:, :, 0].astype(np.float32)
            for k, i in enumerate(live):
                memory = memories[i]
                memory.write_object(memory.object("s"), s_b[k])
                memory.write_object(memory.object("q"), q_b[k])
                s_out = memory.read_object(memory.object("s"))
                q_out = memory.read_object(memory.object("q"))
                results[i] = np.concatenate([s_out, q_out])
        return results

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        a = memory.object("A")
        r = memory.object("r")
        p = memory.object("p")
        s = memory.object("s")
        q = memory.object("q")

        # Kernel 1: thread j, loop over rows i.
        k1 = KernelTrace("bicg_kernel1")
        warp_id = 0
        for cta_id, (cta_first, cta_threads) in enumerate(
            common.ctas_of_threads(self.ny, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for first_j, lanes in common.warp_partition(cta_threads):
                j0 = cta_first + first_j
                insts: list = [Compute(4)]  # index setup + s[j]=0
                for i in range(self.nx):
                    insts.append(
                        Load("A", common.contiguous_blocks(
                            a, i * self.ny + j0, lanes))
                    )
                    insts.append(
                        Load("r", (common.block_addr(r, i),))
                    )
                    insts.append(Compute(2, wait=True))  # FMA + loop
                insts.append(
                    Store("s", common.contiguous_blocks(s, j0, lanes))
                )
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            k1.ctas.append(cta)

        # Kernel 2: thread i, loop over columns j; A is uncoalesced.
        k2 = KernelTrace("bicg_kernel2")
        warp_id = 0
        for cta_id, (cta_first, cta_threads) in enumerate(
            common.ctas_of_threads(self.nx, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for first_i, lanes in common.warp_partition(cta_threads):
                i0 = cta_first + first_i
                lane_rows = np.arange(i0, i0 + lanes, dtype=np.int64)
                insts = [Compute(4)]
                for j in range(self.ny):
                    insts.append(
                        Load("A", common.scattered_blocks(
                            a, lane_rows * self.ny + j))
                    )
                    insts.append(Load("p", (common.block_addr(p, j),)))
                    insts.append(Compute(2, wait=True))
                insts.append(
                    Store("q", common.contiguous_blocks(q, i0, lanes))
                )
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            k2.ctas.append(cta)

        return AppTrace(self.name, [k1, k2])
