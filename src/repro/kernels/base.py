"""Application base class, plain memory reader, and trace builder."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.arch.address_space import DataObject, DeviceMemory
from repro.errors import ConfigError, FaultDetected, KernelCrash, TraceError
from repro.kernels import coalesce
from repro.kernels.trace import (
    AppTrace,
    Compute,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.base import OutputMetric


class PlainReader:
    """Reads kernel inputs straight from device memory (no protection).

    The reliability schemes in :mod:`repro.core` implement the same
    one-method protocol and are passed to ``execute`` in place of this
    class, which is the entire integration surface between workloads
    and the paper's contribution.
    """

    def __init__(self, memory: DeviceMemory):
        self.memory = memory

    def read(self, obj: DataObject) -> np.ndarray:
        """Read an input object (injected faults included)."""
        return self.memory.read_object(obj)


class GpuApplication(abc.ABC):
    """A GPGPU workload with functional execution and a memory trace.

    Subclasses define, in the spirit of the paper's Tables II and III:

    * ``name``/``suite`` — e.g. ``"P-BICG"`` / ``"polybench"``.
    * ``error_metric`` — the Table II output metric instance.
    * ``object_importance`` — kernel input objects sorted from most to
      least accessed (the x-axis order of Figs 7 and 9).
    * ``hot_object_names`` — the emboldened (hot) subset of Table III.
    """

    name: str = ""
    suite: str = ""

    def __init__(self, seed: int = 1234):
        self.seed = seed
        self.error_metric = self._make_metric()
        self._golden: np.ndarray | None = None

    # -- subclass contract -------------------------------------------------
    @abc.abstractmethod
    def _make_metric(self) -> OutputMetric:
        """The Table II metric for this application."""

    @property
    @abc.abstractmethod
    def object_importance(self) -> list[str]:
        """Input data objects, most-accessed first (Table III order)."""

    @property
    @abc.abstractmethod
    def hot_object_names(self) -> set[str]:
        """The objects classified hot (bold in Table III)."""

    @abc.abstractmethod
    def setup(self, memory: DeviceMemory) -> None:
        """Allocate and initialize all data objects (deterministic)."""

    @abc.abstractmethod
    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        """Run the kernels functionally and return the checked output.

        Inputs must be fetched through ``reader.read``; outputs must be
        written to device memory with ``memory.write_object`` and the
        returned array must be read back from memory (so faults landing
        in output blocks corrupt the observable result too).
        """

    @abc.abstractmethod
    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        """Generate the warp-level coalesced memory trace."""

    def execute_batch(self, memories, readers) -> list:
        """Run N injected lanes; per lane an output array or exception.

        The batched campaign engine calls this with parallel lists of
        per-lane device memories and scheme readers.  The returned list
        holds, per lane, either the output array ``execute`` would
        return or the :class:`~repro.errors.FaultDetected` /
        :class:`~repro.errors.KernelCrash` it would raise.  This
        default simply loops ``execute`` — the scalar fallback every
        application gets for free; vectorizable kernels override it
        with stacked ``(N, ...)`` sweeps that must stay bitwise
        identical to the scalar path (assert so in tests, not here).
        """
        results = []
        for memory, reader in zip(memories, readers):
            try:
                results.append(self.execute(memory, reader))
            except (FaultDetected, KernelCrash) as exc:
                results.append(exc)
        return results

    # -- provided machinery ------------------------------------------------
    def fresh_memory(
        self, capacity_bytes: int = 64 * 1024 * 1024
    ) -> DeviceMemory:
        """A new device memory with this app set up in it."""
        memory = DeviceMemory(capacity_bytes)
        self.setup(memory)
        return memory

    def golden_output(self) -> np.ndarray:
        """The fault-free baseline output (computed once, cached)."""
        if self._golden is None:
            memory = self.fresh_memory()
            self._golden = self.execute(memory, PlainReader(memory))
        return self._golden

    def input_objects(self, memory: DeviceMemory) -> list[DataObject]:
        """Handles for the importance-ordered kernel input objects."""
        return [memory.object(name) for name in self.object_importance]

    def hot_objects(self, memory: DeviceMemory) -> list[DataObject]:
        """Handles for the declared hot objects, importance-ordered."""
        return [
            memory.object(name)
            for name in self.object_importance
            if name in self.hot_object_names
        ]

    def validate_declarations(self) -> None:
        """Sanity-check the Table III declarations against each other."""
        importance = self.object_importance
        if len(set(importance)) != len(importance):
            raise ConfigError(f"{self.name}: duplicate objects in importance")
        missing = self.hot_object_names - set(importance)
        if missing:
            raise ConfigError(
                f"{self.name}: hot objects {sorted(missing)} not in "
                "object_importance"
            )
        # Hot objects must be a prefix of the importance order: the
        # schemes protect objects cumulatively from the most accessed.
        prefix = set(importance[: len(self.hot_object_names)])
        if prefix != self.hot_object_names:
            raise ConfigError(
                f"{self.name}: hot objects {sorted(self.hot_object_names)} "
                f"are not the top of the importance order {importance}"
            )

    def rng(self, *keys: int) -> np.random.Generator:
        """Deterministic generator for input initialization."""
        from repro.utils.rng import derive_seed

        return np.random.default_rng(derive_seed(self.seed, *keys))


class TraceBuilder:
    """Incrementally builds one warp's instruction stream.

    Adjacent non-waiting compute instructions are merged so the trace
    stays compact while preserving issue-slot counts.
    """

    def __init__(self, warp_id: int):
        self._warp_id = warp_id
        self._insts: list = []

    def compute(self, count: int = 1, wait: bool = False) -> "TraceBuilder":
        """Append ALU issue slots (``wait`` = scoreboard barrier)."""
        if count <= 0:
            raise TraceError("compute count must be positive")
        if (
            not wait
            and self._insts
            and isinstance(self._insts[-1], Compute)
            and not self._insts[-1].wait
        ):
            self._insts[-1] = Compute(self._insts[-1].count + count, False)
        else:
            self._insts.append(Compute(count, wait))
        return self

    def load_indices(
        self, obj: DataObject, lane_indices: Sequence[int] | np.ndarray
    ) -> "TraceBuilder":
        """Append a load of per-lane element indices (coalesced)."""
        addrs = coalesce.coalesce_indices(obj, lane_indices)
        self._insts.append(Load(obj.name, addrs))
        return self

    def load_broadcast(self, obj: DataObject, flat_index: int) \
            -> "TraceBuilder":
        """Append a warp-wide broadcast load (one transaction)."""
        addrs = coalesce.broadcast_transaction(obj, flat_index)
        self._insts.append(Load(obj.name, addrs))
        return self

    def load_strided(
        self, obj: DataObject, start: int, stride: int, lanes: int
    ) -> "TraceBuilder":
        """Append a strided load (lane i reads start + i*stride)."""
        addrs = coalesce.strided_transactions(obj, start, stride, lanes)
        self._insts.append(Load(obj.name, addrs))
        return self

    def store_indices(
        self, obj: DataObject, lane_indices: Sequence[int] | np.ndarray
    ) -> "TraceBuilder":
        """Append a store of per-lane element indices (coalesced)."""
        addrs = coalesce.coalesce_indices(obj, lane_indices)
        self._insts.append(Store(obj.name, addrs))
        return self

    def build(self) -> WarpTrace:
        """Finalize the warp's instruction stream."""
        return WarpTrace(self._warp_id, self._insts)
