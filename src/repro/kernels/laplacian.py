"""A-Laplacian: Laplacian edge-enhancement filter (AxBench).

The 3x3 Laplacian matrix (Listing 3's ``d_LaplacianMatrix``) fits in a
single memory block and is re-read for every window tap of every
pixel, which makes its one block the most accessed in the entire
application (Figure 3(d)); ``Filter_Height`` and ``Filter_Width`` are
re-read per tap for the bounds checks.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.stencil import StencilApp, convolve3x3

LAPLACIAN = np.array(
    [[0.0, 1.0, 0.0],
     [1.0, -4.0, 1.0],
     [0.0, 1.0, 0.0]],
    dtype=np.float32,
)


class Laplacian(StencilApp):
    """3x3 Laplacian filter; hot: Filter + bounds scalars."""

    name = "A-Laplacian"
    filter_elements = 9

    @property
    def object_importance(self) -> list[str]:
        return ["Filter", "Filter_Height", "Filter_Width", "Image"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"Filter", "Filter_Height", "Filter_Width"}

    def _filter_values(self) -> np.ndarray:
        return LAPLACIAN.ravel()

    def _tap_loads(self) -> list[str]:
        return ["Filter", "Filter_Height", "Filter_Width"]

    def _apply(self, image: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
        kernel = coeffs.reshape(3, 3).astype(np.float64)
        out = convolve3x3(image, kernel)
        return np.clip(np.abs(out), 0.0, 255.0).astype(np.float32)
