"""GPGPU workload models.

Every application the paper evaluates is re-implemented here twice
over:

1. *Functionally* — NumPy math that reads kernel inputs from simulated
   device memory (through a pluggable reader, where the reliability
   schemes interpose) so injected faults propagate to real outputs.
2. *As a trace* — the warp-level, coalesced memory-transaction stream
   the CUDA kernel's loads and stores would generate, which drives the
   profiling analyses (Figs 3/4, Table III) and the timing simulator
   (Fig 7).

The access-pattern fidelity lives in the per-kernel index arithmetic,
transcribed from the paper's listings and the benchmark suites'
sources (e.g. ``r[i]`` broadcasts while ``A[i*NY+j]`` streams, and the
column-major kernels issue 32-way uncoalesced transactions).
"""

from repro.kernels.base import GpuApplication, PlainReader, TraceBuilder
from repro.kernels.coalesce import coalesce_indices
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
    resilience_apps,
)
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)

__all__ = [
    "GpuApplication",
    "PlainReader",
    "TraceBuilder",
    "coalesce_indices",
    "APPLICATIONS",
    "FLAT_APPLICATIONS",
    "create_app",
    "resilience_apps",
    "AppTrace",
    "Compute",
    "CtaTrace",
    "KernelTrace",
    "Load",
    "Store",
    "WarpTrace",
]
