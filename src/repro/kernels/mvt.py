"""P-MVT: matrix-vector product and transpose (Polybench-GPU).

Two kernels, thread per row/column::

    mvt_kernel1: x1[i] += a[i*n + j] * y1[j]   (A uncoalesced, y1 broadcast)
    mvt_kernel2: x2[i] += a[j*n + i] * y2[j]   (A coalesced,   y2 broadcast)

Hot objects: ``y1`` and ``y2`` (Table III).
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.errors import FaultDetected, KernelCrash
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.vector import VectorDeviationMetric

CTA_SIZE = 256


class Mvt(GpuApplication):
    """Matrix-vector product and transpose; hot: y1 and y2."""

    name = "P-MVT"
    suite = "polybench"

    def __init__(self, n: int = 384, seed: int = 1234):
        self.n = n
        super().__init__(seed)

    def _make_metric(self) -> VectorDeviationMetric:
        return VectorDeviationMetric()

    @property
    def object_importance(self) -> list[str]:
        return ["y1", "y2", "a"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"y1", "y2"}

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        a = memory.alloc("a", (self.n, self.n), np.float32)
        y1 = memory.alloc("y1", (self.n,), np.float32)
        y2 = memory.alloc("y2", (self.n,), np.float32)
        x1 = memory.alloc("x1", (self.n,), np.float32, read_only=False)
        x2 = memory.alloc("x2", (self.n,), np.float32, read_only=False)
        memory.write_object(a, rng.uniform(-1.0, 1.0, size=(self.n, self.n)))
        memory.write_object(y1, rng.uniform(-1.0, 1.0, size=self.n))
        memory.write_object(y2, rng.uniform(-1.0, 1.0, size=self.n))
        memory.write_object(x1, rng.uniform(-1.0, 1.0, size=self.n))
        memory.write_object(x2, rng.uniform(-1.0, 1.0, size=self.n))

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        a = reader.read(memory.object("a"))
        y1 = reader.read(memory.object("y1"))
        y2 = reader.read(memory.object("y2"))
        # x1/x2 are read-modify-write; their initial values come from
        # memory too (and can therefore be faulted).
        x1_init = memory.read_object(memory.object("x1"))
        x2_init = memory.read_object(memory.object("x2"))
        with np.errstate(all="ignore"):  # faulted inputs may overflow
            x1 = (x1_init + a @ y1).astype(np.float32)
            x2 = (x2_init + a.T @ y2).astype(np.float32)
        memory.write_object(memory.object("x1"), x1)
        memory.write_object(memory.object("x2"), x2)
        x1_out = memory.read_object(memory.object("x1"))
        x2_out = memory.read_object(memory.object("x2"))
        return np.concatenate([x1_out, x2_out])

    def execute_batch(self, memories, readers) -> list:
        # Stacked (N, n, n) matmuls; the read-modify-write adds are
        # elementwise, so batching keeps them bitwise scalar-identical.
        results: list = [None] * len(memories)
        live, a_rows, y1_rows, y2_rows = [], [], [], []
        x1_rows, x2_rows = [], []
        for i, (memory, reader) in enumerate(zip(memories, readers)):
            try:
                a = reader.read(memory.object("a"))
                y1 = reader.read(memory.object("y1"))
                y2 = reader.read(memory.object("y2"))
            except (FaultDetected, KernelCrash) as exc:
                results[i] = exc
                continue
            live.append(i)
            a_rows.append(a)
            y1_rows.append(y1)
            y2_rows.append(y2)
            x1_rows.append(memory.read_object(memory.object("x1")))
            x2_rows.append(memory.read_object(memory.object("x2")))
        if live:
            a_b = np.stack(a_rows)
            y1_b = np.stack(y1_rows)
            y2_b = np.stack(y2_rows)
            x1_b = np.stack(x1_rows)
            x2_b = np.stack(x2_rows)
            with np.errstate(all="ignore"):
                x1_out_b = (
                    x1_b + np.matmul(a_b, y1_b[:, :, None])[:, :, 0]
                ).astype(np.float32)
                x2_out_b = (
                    x2_b + np.matmul(
                        a_b.transpose(0, 2, 1), y2_b[:, :, None]
                    )[:, :, 0]
                ).astype(np.float32)
            for k, i in enumerate(live):
                memory = memories[i]
                memory.write_object(memory.object("x1"), x1_out_b[k])
                memory.write_object(memory.object("x2"), x2_out_b[k])
                x1_out = memory.read_object(memory.object("x1"))
                x2_out = memory.read_object(memory.object("x2"))
                results[i] = np.concatenate([x1_out, x2_out])
        return results

    def _vector_kernel(
        self,
        name: str,
        a_obj,
        x_obj,
        y_obj,
        coalesced: bool,
    ) -> KernelTrace:
        """Build one of the two MVT kernels.

        ``coalesced`` selects between the row-major (kernel1, lane
        stride n) and column-major (kernel2, lane stride 1) indexings
        of ``a``.
        """
        kernel = KernelTrace(name)
        warp_id = 0
        for cta_id, (cta_first, cta_threads) in enumerate(
            common.ctas_of_threads(self.n, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for first_i, lanes in common.warp_partition(cta_threads):
                i0 = cta_first + first_i
                lane_rows = np.arange(i0, i0 + lanes, dtype=np.int64)
                x_blocks = common.contiguous_blocks(x_obj, i0, lanes)
                insts: list = [Compute(3), Load(x_obj.name, x_blocks)]
                for j in range(self.n):
                    if coalesced:
                        a_blocks = common.contiguous_blocks(
                            a_obj, j * self.n + i0, lanes
                        )
                    else:
                        a_blocks = common.scattered_blocks(
                            a_obj, lane_rows * self.n + j
                        )
                    insts.append(Load("a", a_blocks))
                    insts.append(
                        Load(y_obj.name, (common.block_addr(y_obj, j),))
                    )
                    insts.append(Compute(2, wait=True))
                insts.append(Store(x_obj.name, x_blocks))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            kernel.ctas.append(cta)
        return kernel

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        a = memory.object("a")
        k1 = self._vector_kernel(
            "mvt_kernel1", a, memory.object("x1"), memory.object("y1"),
            coalesced=False,
        )
        k2 = self._vector_kernel(
            "mvt_kernel2", a, memory.object("x2"), memory.object("y2"),
            coalesced=True,
        )
        return AppTrace(self.name, [k1, k2])
