"""P-GRAMSCHM: modified Gram-Schmidt QR decomposition (Polybench-GPU).

The second counter-example of Figure 3(h): per-block access counts
grow in small steps (column ``k`` of ``Q`` is re-read by every thread
handling columns ``j > k``, so earlier columns accumulate linearly
more accesses) but no block is disproportionally hot, so the
data-centric schemes do not apply.
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.vector import VectorDeviationMetric

CTA_SIZE = 256


class GramSchmidt(GpuApplication):
    """Modified Gram-Schmidt QR; gently ramping access profile."""

    name = "P-GRAMSCHM"
    suite = "polybench"

    def __init__(self, n: int = 96, seed: int = 1234):
        self.n = n
        super().__init__(seed)

    def _make_metric(self) -> VectorDeviationMetric:
        return VectorDeviationMetric(threshold=0.0, rel_tol=1e-4)

    @property
    def object_importance(self) -> list[str]:
        return ["A"]

    @property
    def hot_object_names(self) -> set[str]:
        return set()

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        a = memory.alloc("A", (self.n, self.n), np.float32)
        memory.alloc("Q", (self.n, self.n), np.float32, read_only=False)
        memory.alloc("R", (self.n, self.n), np.float32, read_only=False)
        # Diagonally dominant input keeps the decomposition well
        # conditioned so tiny float noise does not flip the SDC verdict.
        mat = rng.uniform(0.0, 1.0, size=(self.n, self.n))
        mat += self.n * np.eye(self.n)
        memory.write_object(a, mat)

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        a = reader.read(memory.object("A")).astype(np.float64)
        n = self.n
        q = np.zeros((n, n))
        r = np.zeros((n, n))
        work = a.copy()
        for k in range(n):
            r[k, k] = np.sqrt(np.sum(work[:, k] ** 2))
            q[:, k] = work[:, k] / r[k, k]
            if k + 1 < n:
                r[k, k + 1:] = q[:, k] @ work[:, k + 1:]
                work[:, k + 1:] -= np.outer(q[:, k], r[k, k + 1:])
        memory.write_object(memory.object("Q"), q)
        memory.write_object(memory.object("R"), r)
        q_out = memory.read_object(memory.object("Q"))
        r_out = memory.read_object(memory.object("R"))
        return np.concatenate([q_out.ravel(), r_out.ravel()])

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        a = memory.object("A")
        q = memory.object("Q")
        r = memory.object("R")
        n = self.n
        kernels = []
        # One kernel-3 launch per column k dominates the access profile;
        # kernels 1 and 2 (norm + normalize) are folded into the first
        # warp's prologue per launch to keep the trace compact without
        # changing any per-block count materially.
        for k in range(n - 1):
            kernel = KernelTrace(f"gramschmidt_kernel3_k{k}")
            remaining = n - 1 - k
            warp_id = 0
            for cta_id, (cta_first, cta_threads) in enumerate(
                common.ctas_of_threads(remaining, CTA_SIZE)
            ):
                cta = CtaTrace(cta_id)
                for first, lanes in common.warp_partition(cta_threads):
                    j0 = k + 1 + cta_first + first
                    insts: list = [Compute(2)]
                    for i in range(n):
                        insts.append(Load(
                            "Q", (common.block_addr(q, i * n + k),)))
                        insts.append(Load(
                            "A", common.contiguous_blocks(
                                a, i * n + j0, lanes)))
                        insts.append(Compute(2, wait=True))
                    insts.append(Store(
                        "R", common.contiguous_blocks(r, k * n + j0, lanes)))
                    for i in range(n):
                        insts.append(Load(
                            "Q", (common.block_addr(q, i * n + k),)))
                        insts.append(Load(
                            "A", common.contiguous_blocks(
                                a, i * n + j0, lanes)))
                        insts.append(Compute(2, wait=True))
                        insts.append(Store(
                            "A", common.contiguous_blocks(
                                a, i * n + j0, lanes)))
                    cta.warps.append(WarpTrace(warp_id, insts))
                    warp_id += 1
                kernel.ctas.append(cta)
            kernels.append(kernel)
        return AppTrace(self.name, kernels)
