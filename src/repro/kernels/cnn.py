"""C-NN: a four-layer convolutional digit classifier (CUDA-SDK style).

The network follows the classic CUDA ConvNN the paper profiles
(Listing 2 is its ``FirstLayer`` kernel):

* Layer 1 — 6 feature maps, 5x5 kernel, stride 2: 29x29 -> 6 x 13x13.
  Weight layout ``Layer1_Weights[map*26]`` = bias, then 25 weights, as
  in the listing (``weightBegin = blockID * 26``).
* Layer 2 — 50 maps from all 6, 5x5 stride 2: -> 50 x 5x5.
  ``Layer2_Weights[(out*6 + in)*26]`` = bias + 25 weights.
* Layer 3 — fully connected 1250 -> 100 (bias + weights per neuron).
* Layer 4 — fully connected 100 -> 10; classification = argmax.

Activation is the listing's ``1.7159 * tanh(0.66666667 * x)``.

The convolution weights are broadcast warp-wide from a handful of
memory blocks on every multiply-accumulate, which is what makes
``Layer1_Weights``/``Layer2_Weights`` the hottest blocks in the
application by orders of magnitude (Figure 3(a)): they are reused by
every CTA of every image, while image and FC-weight blocks are
streamed a bounded number of times each.
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.classification import (
    MisclassificationMetric,
    batch_threshold,
)

IMAGE_DIM = 29
L1_MAPS = 6
L1_OUT = 13  # (29 - 5) / 2 + 1
L2_MAPS = 50
L2_OUT = 5  # (13 - 5) / 2 + 1
FC_IN = L2_MAPS * L2_OUT * L2_OUT  # 1250
FC_HIDDEN = 100
CLASSES = 10


def activation(x: np.ndarray) -> np.ndarray:
    """Listing 2's scaled tanh: 1.7159 * tanh(2x/3)."""
    return 1.7159 * np.tanh(0.66666667 * x)


class Cnn(GpuApplication):
    """Four-layer convolutional classifier; hot: conv weights."""

    name = "C-NN"
    suite = "cuda-sdk"

    def __init__(self, batch: int = 12, seed: int = 1234):
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.batch = batch
        super().__init__(seed)

    def _make_metric(self) -> MisclassificationMetric:
        # More than one flipped image out of the batch is systemic
        # corruption; a single flip is localized input damage.
        return MisclassificationMetric(threshold=batch_threshold(self.batch))

    @property
    def object_importance(self) -> list[str]:
        return [
            "Layer1_Weights",
            "Layer2_Weights",
            "Layer3_Weights",
            "Layer4_Weights",
            "Images",
        ]

    @property
    def hot_object_names(self) -> set[str]:
        return {"Layer1_Weights", "Layer2_Weights"}

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        w1 = memory.alloc("Layer1_Weights", (L1_MAPS * 26,), np.float32)
        w2 = memory.alloc(
            "Layer2_Weights", (L2_MAPS * L1_MAPS * 26,), np.float32)
        w3 = memory.alloc(
            "Layer3_Weights", (FC_HIDDEN * (FC_IN + 1),), np.float32)
        w4 = memory.alloc(
            "Layer4_Weights", (CLASSES * (FC_HIDDEN + 1),), np.float32)
        images = memory.alloc(
            "Images", (self.batch, IMAGE_DIM, IMAGE_DIM), np.float32)
        memory.alloc("Layer2_Neurons",
                     (self.batch, L1_MAPS, L1_OUT, L1_OUT),
                     np.float32, read_only=False)
        memory.alloc("Layer3_Neurons", (self.batch, FC_IN),
                     np.float32, read_only=False)
        memory.alloc("Layer4_Neurons", (self.batch, FC_HIDDEN),
                     np.float32, read_only=False)
        memory.alloc("Out", (self.batch, CLASSES),
                     np.float32, read_only=False)

        memory.write_object(
            w1, rng.normal(0.0, 0.4, size=L1_MAPS * 26))
        memory.write_object(
            w2, rng.normal(0.0, 0.15, size=L2_MAPS * L1_MAPS * 26))
        memory.write_object(
            w3, rng.normal(0.0, 0.05, size=FC_HIDDEN * (FC_IN + 1)))
        memory.write_object(
            w4, rng.normal(0.0, 0.15, size=CLASSES * (FC_HIDDEN + 1)))
        # Synthetic digit-like inputs: blobs and strokes with noise.
        # The metric is baseline-relative so realism is not required,
        # but structured inputs keep layer activations well-scaled.
        imgs = rng.uniform(0.0, 0.2,
                           size=(self.batch, IMAGE_DIM, IMAGE_DIM))
        for b in range(self.batch):
            cy, cx = rng.integers(8, 21, size=2)
            yy, xx = np.mgrid[0:IMAGE_DIM, 0:IMAGE_DIM]
            blob = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / 18.0)
            imgs[b] += blob
            if b % 2:
                imgs[b, :, cx - 3:cx + 3] += 0.5  # vertical stroke
        memory.write_object(images, np.clip(imgs, 0.0, 1.0))

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        images = reader.read(memory.object("Images")).astype(np.float64)
        w1 = reader.read(memory.object("Layer1_Weights")).astype(np.float64)
        w2 = reader.read(memory.object("Layer2_Weights")).astype(np.float64)
        w3 = reader.read(memory.object("Layer3_Weights")).astype(np.float64)
        w4 = reader.read(memory.object("Layer4_Weights")).astype(np.float64)
        if not (np.isfinite(w3).all() and np.isfinite(w4).all()):
            # NaN weights in the big FC layers poison every activation;
            # keep going — the metric classifies non-finite output.
            pass

        # Faulted weights can be huge/inf; the activations saturate
        # but intermediate products may overflow (silently, as on HW).
        with np.errstate(all="ignore"):
            return self._forward(memory, images, w1, w2, w3, w4)

    def _forward(self, memory, images, w1, w2, w3, w4) -> np.ndarray:
        # Layer 1: 5x5 stride-2 convolution per map.
        w1 = w1.reshape(L1_MAPS, 26)
        windows = np.lib.stride_tricks.sliding_window_view(
            images, (5, 5), axis=(1, 2))[:, ::2, ::2]  # (B,13,13,5,5)
        conv1 = np.einsum("byxij,mij->bmyx", windows,
                          w1[:, 1:].reshape(L1_MAPS, 5, 5))
        l2n = activation(w1[:, 0][None, :, None, None] + conv1)
        memory.write_object(memory.object("Layer2_Neurons"), l2n)
        l2n = memory.read_object(
            memory.object("Layer2_Neurons")).astype(np.float64)

        # Layer 2: 5x5 stride-2 convolution across all 6 maps.
        w2 = w2.reshape(L2_MAPS, L1_MAPS, 26)
        windows2 = np.lib.stride_tricks.sliding_window_view(
            l2n, (5, 5), axis=(2, 3))[:, :, ::2, ::2]  # (B,6,5,5,5,5)
        conv2 = np.einsum(
            "bmyxij,fmij->bfyx", windows2,
            w2[:, :, 1:].reshape(L2_MAPS, L1_MAPS, 5, 5))
        bias2 = w2[:, :, 0].sum(axis=1)  # summed per-input-map biases
        l3n = activation(bias2[None, :, None, None] + conv2)
        memory.write_object(
            memory.object("Layer3_Neurons"), l3n.reshape(self.batch, FC_IN))
        l3n = memory.read_object(
            memory.object("Layer3_Neurons")).astype(np.float64)

        # Layer 3: fully connected 1250 -> 100.
        w3 = w3.reshape(FC_HIDDEN, FC_IN + 1)
        l4n = activation(w3[:, 0][None, :] + l3n @ w3[:, 1:].T)
        memory.write_object(memory.object("Layer4_Neurons"), l4n)
        l4n = memory.read_object(
            memory.object("Layer4_Neurons")).astype(np.float64)

        # Layer 4: fully connected 100 -> 10.
        w4 = w4.reshape(CLASSES, FC_HIDDEN + 1)
        scores = activation(w4[:, 0][None, :] + l4n @ w4[:, 1:].T)
        memory.write_object(memory.object("Out"), scores)
        scores = memory.read_object(memory.object("Out"))

        # Classification vector: NaN scores classify as class -1 so the
        # misclassification metric flags them deterministically.
        labels = np.where(
            np.isfinite(scores).all(axis=1),
            np.argmax(np.nan_to_num(scores, nan=-np.inf), axis=1),
            -1,
        )
        return labels.astype(np.int64)

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        return AppTrace(
            self.name,
            [
                self._layer1_trace(memory),
                self._layer2_trace(memory),
                self._fc_trace(memory, "ThirdLayer", "Layer3_Neurons",
                               "Layer3_Weights", "Layer4_Neurons",
                               FC_IN, FC_HIDDEN),
                self._fc_trace(memory, "FourthLayer", "Layer4_Neurons",
                               "Layer4_Weights", "Out",
                               FC_HIDDEN, CLASSES),
            ],
        )

    def _layer1_trace(self, memory: DeviceMemory) -> KernelTrace:
        images = memory.object("Images")
        w1 = memory.object("Layer1_Weights")
        l2n = memory.object("Layer2_Neurons")
        kernel = KernelTrace("FirstLayer")
        warp_id = 0
        cta_id = 0
        n_threads = L1_OUT * L1_OUT  # 169, 2-D (13, 13)
        for b in range(self.batch):
            for map_id in range(L1_MAPS):
                cta = CtaTrace(cta_id)
                cta_id += 1
                weight_begin = map_id * 26
                for first, lanes in common.warp_partition(n_threads):
                    tid = np.arange(first, first + lanes, dtype=np.int64)
                    py, px = tid // L1_OUT, tid % L1_OUT
                    insts: list = [
                        Compute(6),
                        Load("Layer1_Weights",
                             (common.block_addr(w1, weight_begin),)),
                    ]
                    base = b * IMAGE_DIM * IMAGE_DIM
                    for i in range(25):
                        flat = base + (2 * py + i // 5) * IMAGE_DIM \
                            + 2 * px + i % 5
                        insts.append(Load(
                            "Images", common.scattered_blocks(images, flat)))
                        insts.append(Load(
                            "Layer1_Weights",
                            (common.block_addr(w1, weight_begin + 1 + i),)))
                        insts.append(Compute(2, wait=True))
                    insts.append(Compute(3))  # activation
                    out_flat = (b * L1_MAPS + map_id) * n_threads \
                        + py * L1_OUT + px
                    insts.append(Store(
                        "Layer2_Neurons",
                        common.scattered_blocks(l2n, out_flat)))
                    cta.warps.append(WarpTrace(warp_id, insts))
                    warp_id += 1
                kernel.ctas.append(cta)
        return kernel

    def _layer2_trace(self, memory: DeviceMemory) -> KernelTrace:
        w2 = memory.object("Layer2_Weights")
        l2n = memory.object("Layer2_Neurons")
        l3n = memory.object("Layer3_Neurons")
        kernel = KernelTrace("SecondLayer")
        warp_id = 0
        cta_id = 0
        n_threads = L2_OUT * L2_OUT  # 25, one warp per CTA
        tid = np.arange(n_threads, dtype=np.int64)
        py, px = tid // L2_OUT, tid % L2_OUT
        for b in range(self.batch):
            for feature in range(L2_MAPS):
                cta = CtaTrace(cta_id)
                cta_id += 1
                insts: list = [Compute(6)]
                for in_map in range(L1_MAPS):
                    weight_begin = (feature * L1_MAPS + in_map) * 26
                    insts.append(Load(
                        "Layer2_Weights",
                        (common.block_addr(w2, weight_begin),)))
                    base = (b * L1_MAPS + in_map) * L1_OUT * L1_OUT
                    for i in range(25):
                        flat = base + (2 * py + i // 5) * L1_OUT \
                            + 2 * px + i % 5
                        insts.append(Load(
                            "Layer2_Neurons",
                            common.scattered_blocks(l2n, flat)))
                        insts.append(Load(
                            "Layer2_Weights",
                            (common.block_addr(
                                w2, weight_begin + 1 + i),)))
                        insts.append(Compute(2, wait=True))
                insts.append(Compute(3))
                out_flat = b * FC_IN + feature * n_threads + tid
                insts.append(Store(
                    "Layer3_Neurons", common.scattered_blocks(l3n, out_flat)))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
                kernel.ctas.append(cta)
        return kernel

    def _fc_trace(
        self,
        memory: DeviceMemory,
        kernel_name: str,
        in_name: str,
        weight_name: str,
        out_name: str,
        fan_in: int,
        fan_out: int,
    ) -> KernelTrace:
        """Fully connected layer: one 32-thread CTA per (image, neuron);
        lanes stride across the contiguous weight row (coalesced)."""
        w = memory.object(weight_name)
        inp = memory.object(in_name)
        out = memory.object(out_name)
        kernel = KernelTrace(kernel_name)
        warp_id = 0
        cta_id = 0
        for b in range(self.batch):
            for neuron in range(fan_out):
                cta = CtaTrace(cta_id)
                cta_id += 1
                row = neuron * (fan_in + 1)
                insts: list = [
                    Compute(4),
                    Load(weight_name, (common.block_addr(w, row),)),  # bias
                ]
                for k0 in range(0, fan_in, 32):
                    lanes = min(32, fan_in - k0)
                    insts.append(Load(
                        weight_name,
                        common.contiguous_blocks(w, row + 1 + k0, lanes)))
                    insts.append(Load(
                        in_name,
                        common.contiguous_blocks(
                            inp, b * fan_in + k0, lanes)))
                    insts.append(Compute(2, wait=True))
                insts.append(Compute(6))  # tree reduction + activation
                insts.append(Store(
                    out_name,
                    (common.block_addr(out, b * fan_out + neuron),)))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
                kernel.ctas.append(cta)
        return kernel
