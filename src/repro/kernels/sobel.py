"""A-Sobel: Sobel edge detection (AxBench).

The Filter object packs both gradient kernels (Gx then Gy, 18 floats,
still a single memory block); each window tap reads the pair of
coefficients, so the Filter block's access profile matches
A-Laplacian's (Table III reports identical hot percentages for both).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.stencil import StencilApp, convolve3x3

SOBEL_GX = np.array(
    [[-1.0, 0.0, 1.0],
     [-2.0, 0.0, 2.0],
     [-1.0, 0.0, 1.0]],
    dtype=np.float32,
)
SOBEL_GY = np.array(
    [[-1.0, -2.0, -1.0],
     [0.0, 0.0, 0.0],
     [1.0, 2.0, 1.0]],
    dtype=np.float32,
)


class Sobel(StencilApp):
    """Sobel edge detection; hot: Filter + bounds scalars."""

    name = "A-Sobel"
    filter_elements = 18

    @property
    def object_importance(self) -> list[str]:
        return ["Filter", "Filter_Height", "Filter_Width", "Image"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"Filter", "Filter_Height", "Filter_Width"}

    def _filter_values(self) -> np.ndarray:
        return np.concatenate([SOBEL_GX.ravel(), SOBEL_GY.ravel()])

    def _tap_loads(self) -> list[str]:
        return ["Filter", "Filter_Height", "Filter_Width"]

    def _apply(self, image: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
        gx_kernel = coeffs[:9].reshape(3, 3).astype(np.float64)
        gy_kernel = coeffs[9:].reshape(3, 3).astype(np.float64)
        gx = convolve3x3(image, gx_kernel)
        gy = convolve3x3(image, gy_kernel)
        magnitude = np.sqrt(gx * gx + gy * gy)
        return np.clip(magnitude, 0.0, 255.0).astype(np.float32)
