"""P-GESUMMV: scalar-vector-matrix multiply, ``y = aAx + bBx``
(Polybench-GPU).

One kernel, thread per row ``i``, accumulating into global ``tmp[i]``
and ``y[i]`` exactly as the (famously unoptimized) Polybench-GPU code
does::

    for (j = 0; j < n; j++) {
        tmp[i] += a[i*n + j] * x[j];
        y[i]   += b[i*n + j] * x[j];
    }
    y[i] = alpha * tmp[i] + beta * y[i];

Both matrices are accessed with lane stride ``n`` (32 uncoalesced
transactions per warp per load) while ``x[j]`` broadcasts — making
``x`` the hot object of Table III.
"""

from __future__ import annotations

import numpy as np

from repro.arch.address_space import DeviceMemory
from repro.errors import FaultDetected, KernelCrash
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.vector import VectorDeviationMetric

CTA_SIZE = 256
ALPHA = 1.5
BETA = 2.5


class Gesummv(GpuApplication):
    """y = alpha*A*x + beta*B*x; hot object: the vector x."""

    name = "P-GESUMMV"
    suite = "polybench"

    def __init__(self, n: int = 384, seed: int = 1234):
        self.n = n
        super().__init__(seed)

    def _make_metric(self) -> VectorDeviationMetric:
        return VectorDeviationMetric()

    @property
    def object_importance(self) -> list[str]:
        return ["x", "A", "B"]

    @property
    def hot_object_names(self) -> set[str]:
        return {"x"}

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        a = memory.alloc("A", (self.n, self.n), np.float32)
        b = memory.alloc("B", (self.n, self.n), np.float32)
        x = memory.alloc("x", (self.n,), np.float32)
        memory.alloc("tmp", (self.n,), np.float32, read_only=False)
        memory.alloc("y", (self.n,), np.float32, read_only=False)
        memory.write_object(a, rng.uniform(-1.0, 1.0, size=(self.n, self.n)))
        memory.write_object(b, rng.uniform(-1.0, 1.0, size=(self.n, self.n)))
        memory.write_object(x, rng.uniform(-1.0, 1.0, size=self.n))

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        a = reader.read(memory.object("A"))
        b = reader.read(memory.object("B"))
        x = reader.read(memory.object("x"))
        with np.errstate(all="ignore"):  # faulted inputs may overflow
            tmp = (a @ x).astype(np.float32)
            partial = (b @ x).astype(np.float32)
        memory.write_object(memory.object("tmp"), tmp)
        # The final combine re-reads tmp from memory, so faults landing
        # in tmp's blocks propagate into y exactly as on hardware.
        tmp_back = memory.read_object(memory.object("tmp"))
        with np.errstate(all="ignore"):
            y = (ALPHA * tmp_back + BETA * partial).astype(np.float32)
        memory.write_object(memory.object("y"), y)
        return memory.read_object(memory.object("y"))

    def execute_batch(self, memories, readers) -> list:
        # Stacked (N, n, n) matmuls; the alpha/beta combine is
        # elementwise and therefore bitwise scalar-identical.
        results: list = [None] * len(memories)
        live, a_rows, b_rows, x_rows = [], [], [], []
        for i, (memory, reader) in enumerate(zip(memories, readers)):
            try:
                a = reader.read(memory.object("A"))
                b = reader.read(memory.object("B"))
                x = reader.read(memory.object("x"))
            except (FaultDetected, KernelCrash) as exc:
                results[i] = exc
                continue
            live.append(i)
            a_rows.append(a)
            b_rows.append(b)
            x_rows.append(x)
        if live:
            a_b = np.stack(a_rows)
            b_b = np.stack(b_rows)
            x_b = np.stack(x_rows)
            with np.errstate(all="ignore"):
                tmp_b = np.matmul(
                    a_b, x_b[:, :, None]
                )[:, :, 0].astype(np.float32)
                partial_b = np.matmul(
                    b_b, x_b[:, :, None]
                )[:, :, 0].astype(np.float32)
            tmp_back = []
            for k, i in enumerate(live):
                memory = memories[i]
                memory.write_object(memory.object("tmp"), tmp_b[k])
                tmp_back.append(
                    memory.read_object(memory.object("tmp")))
            t_b = np.stack(tmp_back)
            with np.errstate(all="ignore"):
                y_b = (ALPHA * t_b + BETA * partial_b) \
                    .astype(np.float32)
            for k, i in enumerate(live):
                memory = memories[i]
                memory.write_object(memory.object("y"), y_b[k])
                results[i] = memory.read_object(memory.object("y"))
        return results

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        a = memory.object("A")
        b = memory.object("B")
        x = memory.object("x")
        tmp = memory.object("tmp")
        y = memory.object("y")

        kernel = KernelTrace("gesummv_kernel")
        warp_id = 0
        for cta_id, (cta_first, cta_threads) in enumerate(
            common.ctas_of_threads(self.n, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for first_i, lanes in common.warp_partition(cta_threads):
                i0 = cta_first + first_i
                lane_rows = np.arange(i0, i0 + lanes, dtype=np.int64)
                tmp_blocks = common.contiguous_blocks(tmp, i0, lanes)
                y_blocks = common.contiguous_blocks(y, i0, lanes)
                insts: list = [Compute(3)]
                for j in range(self.n):
                    flat = lane_rows * self.n + j
                    x_block = (common.block_addr(x, j),)
                    insts.append(Load("A", common.scattered_blocks(a, flat)))
                    insts.append(Load("x", x_block))
                    insts.append(Load("tmp", tmp_blocks))
                    insts.append(Compute(1, wait=True))
                    insts.append(Store("tmp", tmp_blocks))
                    insts.append(Load("B", common.scattered_blocks(b, flat)))
                    insts.append(Load("x", x_block))
                    insts.append(Load("y", y_blocks))
                    insts.append(Compute(1, wait=True))
                    insts.append(Store("y", y_blocks))
                insts.append(Load("tmp", tmp_blocks))
                insts.append(Load("y", y_blocks))
                insts.append(Compute(3, wait=True))
                insts.append(Store("y", y_blocks))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            cta_id += 1
            kernel.ctas.append(cta)

        return AppTrace(self.name, [kernel])
